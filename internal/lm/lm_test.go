package lm

import (
	"strings"
	"testing"

	"repro/internal/record"
	"repro/internal/stats"
)

func TestKnowsMonotoneCoverage(t *testing.T) {
	// Whatever a weaker model knows, a stronger one must also know (the
	// gate uses a single uniform draw per entry).
	entries := []string{"st", "vlb", "tv", "feat", "ipa", "norm:abc", "rare:kx-123"}
	for _, e := range entries {
		for c := 0.1; c < 1.0; c += 0.1 {
			if knows(e, c) && !knows(e, c+0.1) {
				t.Fatalf("knowledge not monotone in coverage for %q", e)
			}
		}
	}
}

func TestKnowsCoverageRate(t *testing.T) {
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if knows(strings.Repeat("x", 1+i%7)+string(rune('a'+i%26))+stringsFromInt(i), 0.7) {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.67 || rate > 0.73 {
		t.Fatalf("knows(·, 0.7) pass rate %.3f", rate)
	}
}

func stringsFromInt(i int) string {
	return string(rune('0'+i%10)) + string(rune('0'+(i/10)%10)) + string(rune('0'+(i/100)%10))
}

func TestKnowsAttendBoostsCoverage(t *testing.T) {
	single, double := 0, 0
	const n = 20000
	for i := 0; i < n; i++ {
		key := "rare:tok" + stringsFromInt(i) + stringsFromInt(i/1000)
		if knows(key+"#a", 0.8) {
			single++
		}
		if knowsAttend(key, 0.8) {
			double++
		}
	}
	// Double draw: 1-(1-0.8)^2 = 0.96.
	if rate := float64(double) / n; rate < 0.945 || rate > 0.975 {
		t.Fatalf("knowsAttend(·, 0.8) pass rate %.3f, want ≈ 0.96", rate)
	}
	if double <= single {
		t.Fatal("double draw did not boost coverage")
	}
}

func TestNormalizeTextCapable(t *testing.T) {
	caps := Capabilities{Normalization: 1, Semantics: 1}
	got := normalizeText("Main St. & 5th Ave.", caps)
	joined := strings.Join(got, " ")
	if !strings.Contains(joined, "street") || !strings.Contains(joined, "avenue") || !strings.Contains(joined, "and") {
		t.Fatalf("full-capability normalization missed abbreviations: %v", got)
	}
}

func TestNormalizeTextSplitsCompounds(t *testing.T) {
	caps := Capabilities{Normalization: 1, Semantics: 1}
	got := strings.Join(normalizeText("256gb drive", caps), " ")
	if !strings.Contains(got, "256") || !strings.Contains(got, "gigabyte") {
		t.Fatalf("compound token not split+normalized: %q", got)
	}
}

func TestNormalizeTextIncapable(t *testing.T) {
	weak := Capabilities{Normalization: 0, Semantics: 0}
	got := normalizeText("Main St.", weak)
	joined := strings.Join(got, " ")
	if strings.Contains(joined, "street") {
		t.Fatalf("zero-capability model normalized an abbreviation: %v", got)
	}
}

func TestSplitAlnum(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"256gb", "256 gb"},
		{"kx-12304", "kx 12304"},
		{"4.0", "4 0"},
		{"---", ""},
		{"plain", "plain"},
	}
	for _, c := range cases {
		got := strings.Join(splitAlnum(c.in), " ")
		if got != c.want {
			t.Errorf("splitAlnum(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestContrastConflict(t *testing.T) {
	toSet := func(toks ...string) map[string]struct{} {
		s := make(map[string]struct{})
		for _, t := range toks {
			s[t] = struct{}{}
		}
		return s
	}
	a := toSet("office", "deluxe", "4")
	b := toSet("office", "premium", "4")
	if !contrastConflict(a, b, 1.0) {
		t.Fatal("deluxe vs premium should conflict at full coverage")
	}
	if contrastConflict(a, b, 0.0) {
		t.Fatal("zero coverage should not detect contrast")
	}
	same := toSet("office", "deluxe")
	if contrastConflict(a, same, 1.0) {
		t.Fatal("same edition should not conflict")
	}
}

func TestIsIdentifierToken(t *testing.T) {
	cases := []struct {
		tok  string
		want bool
	}{
		{"kx-12304", true}, // model number
		{"p1371", true},    // paper id
		{"0123", true},     // phone group
		{"1999", false},    // year
		{"12.99", false},   // price
		{"4.0", false},     // version (handled separately)
		{"225", false},     // short quantity
		{"hello", false},   // plain word
	}
	for _, c := range cases {
		if got := isIdentifierToken(c.tok); got != c.want {
			t.Errorf("isIdentifierToken(%q) = %v, want %v", c.tok, got, c.want)
		}
	}
}

func TestVersionTokens(t *testing.T) {
	got := versionTokens("adobe photoshop 4.0 win")
	if len(got) != 1 || got[0] != "4.0" {
		t.Fatalf("versionTokens = %v", got)
	}
	if len(versionTokens("price is $12.99 today")) != 0 {
		t.Fatal("currency-prefixed decimals must not be versions")
	}
	if len(versionTokens("no versions here")) != 0 {
		t.Fatal("plain words must not be versions")
	}
}

func TestEvidenceIdentifierMatchAndConflict(t *testing.T) {
	caps := GPT4.Zero
	idf := pretrainedWeighter()
	match := record.Pair{
		Left:  record.Record{Values: []string{"sony camera kx-12304 black"}},
		Right: record.Record{Values: []string{"sony camera kx-12304 silver"}},
	}
	ev := extractEvidence(match, caps, idf)
	if ev.IdentifierMatch != 1 {
		t.Fatal("shared model number not detected")
	}
	conflictPair := record.Pair{
		Left:  record.Record{Values: []string{"sony camera kx-12304 black"}},
		Right: record.Record{Values: []string{"sony camera kx-99999 black"}},
	}
	ev = extractEvidence(conflictPair, caps, idf)
	if ev.Conflict == 0 {
		t.Fatal("differing model numbers not flagged as conflict")
	}
}

func TestEvidenceYearConflict(t *testing.T) {
	caps := GPT4.Zero
	p := record.Pair{
		Left:  record.Record{Values: []string{"the last horizon", "1985"}},
		Right: record.Record{Values: []string{"the last horizon", "2003"}},
	}
	ev := extractEvidence(p, caps, nil)
	if ev.YearConflict != 1 {
		t.Fatal("differing years on an aligned attribute not flagged")
	}
	same := record.Pair{
		Left:  record.Record{Values: []string{"the last horizon", "1985"}},
		Right: record.Record{Values: []string{"the last horizon", "1985"}},
	}
	if ev := extractEvidence(same, caps, nil); ev.YearConflict != 0 {
		t.Fatal("equal years flagged as conflict")
	}
}

func TestEvidenceVersionConflict(t *testing.T) {
	caps := GPT4.Zero
	p := record.Pair{
		Left:  record.Record{Values: []string{"adobe photoshop 4.0 win"}},
		Right: record.Record{Values: []string{"adobe photoshop 5.5 win"}},
	}
	ev := extractEvidence(p, caps, nil)
	if ev.VersionConflict != 1 || ev.VersionMatch != 0 {
		t.Fatalf("version conflict not detected: %+v", ev)
	}
	p.Right.Values[0] = "adobe photoshop 4.0 windows"
	ev = extractEvidence(p, caps, nil)
	if ev.VersionMatch != 1 || ev.VersionConflict != 0 {
		t.Fatalf("version agreement not detected: %+v", ev)
	}
}

func TestAttrSimilarityMissingValues(t *testing.T) {
	caps := GPT4.Zero
	if got := attrSimilarity("", "", caps, nil); got != 0.5 {
		t.Fatalf("both-missing sim = %v, want 0.5", got)
	}
	if got := attrSimilarity("something", "", caps, nil); got != 0.4 {
		t.Fatalf("one-missing sim = %v, want 0.4", got)
	}
}

func TestAttrSimilarityNumeric(t *testing.T) {
	numerate := Capabilities{Numeracy: 1}
	if got := attrSimilarity("$99.00", "99 USD", numerate, nil); got < 0.99 {
		t.Fatalf("numerate model should reconcile formats: %v", got)
	}
	innumerate := Capabilities{Numeracy: 0}
	if got := attrSimilarity("$99.00", "99 USD", innumerate, nil); got > 0.6 {
		t.Fatalf("innumerate model should see format difference: %v", got)
	}
}

func TestDurationParsing(t *testing.T) {
	v, ok := parseLooseNumber("3:45")
	if !ok || v != 225 {
		t.Fatalf("parseLooseNumber(3:45) = %v, %v", v, ok)
	}
	if _, ok := parseLooseNumber("3:75"); ok {
		t.Fatal("invalid seconds accepted")
	}
}

func TestEncoderDeterministic(t *testing.T) {
	enc := NewEncoder(GPT2.Capacity)
	p := record.Pair{
		Left:  record.Record{ID: "a", Values: []string{"sony camera kx-1", "$10"}},
		Right: record.Record{ID: "b", Values: []string{"sony camera kx-1", "10 USD"}},
	}
	v1 := enc.Encode(p, record.SerializeOptions{})
	v2 := enc.Encode(p, record.SerializeOptions{})
	if v1.NNZ() != v2.NNZ() {
		t.Fatal("encoding not deterministic")
	}
	for i := range v1.Idx {
		if v1.Idx[i] != v2.Idx[i] || v1.Val[i] != v2.Val[i] {
			t.Fatal("encoding not deterministic")
		}
	}
}

func TestEncoderDim(t *testing.T) {
	enc := NewEncoder(BERT.Capacity)
	if enc.Dim() != numDenseFeatures+BERT.Capacity.HashWidth {
		t.Fatalf("Dim = %d", enc.Dim())
	}
	p := record.Pair{
		Left:  record.Record{Values: []string{"a b c"}},
		Right: record.Record{Values: []string{"a b d"}},
	}
	v := enc.Encode(p, record.SerializeOptions{})
	for _, idx := range v.Idx {
		if idx < 0 || idx >= enc.Dim() {
			t.Fatalf("feature index %d out of range", idx)
		}
	}
}

func TestEncoderPretrainingReducesNoise(t *testing.T) {
	// The same pair encoded by a strongly and a weakly pretrained encoder:
	// the dense evidence feature (index 0) must deviate less from the
	// capable engine's clean score for the stronger encoder.
	p := record.Pair{
		Left:  record.Record{ID: "x1", Values: []string{"golden dragon cafe", "main street"}},
		Right: record.Record{ID: "x2", Values: []string{"golden dragon cafe", "main st."}},
	}
	weakCap := BERT.Capacity
	strongCap := LLaMA32.Capacity
	weak := NewEncoder(weakCap).Encode(p, record.SerializeOptions{})
	strong := NewEncoder(strongCap).Encode(p, record.SerializeOptions{})
	// Locate dense feature 0 in both (first entry by construction).
	if weak.Idx[0] != 0 || strong.Idx[0] != 0 {
		t.Fatal("dense feature 0 not first")
	}
	// Noise magnitude bound: |noise| <= 0.55*(1-pretraining) (scale 1.1 ×
	// symmetric ±0.5 range).
	noiseBoundWeak := 0.55 * (1 - weakCap.Pretraining)
	noiseBoundStrong := 0.55 * (1 - strongCap.Pretraining)
	if noiseBoundStrong >= noiseBoundWeak {
		t.Fatal("capacity profiles do not order pretraining as expected")
	}
}

func TestPromptModelCapabilityLadder(t *testing.T) {
	// On a challenging but solvable pair set, the strongest model must not
	// do worse than the weakest (aggregate over many pairs).
	rng := stats.NewRNG(5)
	makePairs := func() ([]record.Pair, []bool) {
		var pairs []record.Pair
		var labels []bool
		for i := 0; i < 150; i++ {
			id := "kx-" + stringsFromInt(i*7)
			l := record.Record{ID: "l" + stringsFromInt(i), Values: []string{"sony camera " + id + " black", "$99.99"}}
			r := record.Record{ID: "r" + stringsFromInt(i), Values: []string{"SONY cam " + id + " blk", "99.99 USD"}}
			pairs = append(pairs, record.Pair{Left: l, Right: r})
			labels = append(labels, true)
			other := record.Record{ID: "n" + stringsFromInt(i), Values: []string{"sony camera kx-" + stringsFromInt(i*7+3) + " black", "$89.99"}}
			pairs = append(pairs, record.Pair{Left: l, Right: other})
			labels = append(labels, false)
		}
		return pairs, labels
	}
	accuracy := func(p Profile) float64 {
		pairs, labels := makePairs()
		m := NewPromptModel(p, rng.Split(p.Name))
		for _, pr := range pairs {
			m.ObserveCorpus(record.SerializeRecord(pr.Left, record.SerializeOptions{}))
			m.ObserveCorpus(record.SerializeRecord(pr.Right, record.SerializeOptions{}))
		}
		preds := m.MatchBatch(pairs, record.SerializeOptions{})
		correct := 0
		for i := range preds {
			if preds[i] == labels[i] {
				correct++
			}
		}
		return float64(correct) / float64(len(preds))
	}
	strong := accuracy(GPT4)
	weak := accuracy(GPT35Turbo)
	if strong < weak-0.02 {
		t.Fatalf("GPT-4 accuracy %.3f below GPT-3.5 %.3f", strong, weak)
	}
	if strong < 0.85 {
		t.Fatalf("GPT-4 accuracy %.3f too low on a solvable task", strong)
	}
}

func TestBuildPromptLayout(t *testing.T) {
	m := NewPromptModel(GPT4, stats.NewRNG(1))
	pair := record.Pair{
		Left:  record.Record{Values: []string{"abc"}},
		Right: record.Record{Values: []string{"abd"}},
	}
	prompt := m.BuildPrompt(pair, record.SerializeOptions{})
	if !strings.Contains(prompt, "same real-world entity") || !strings.HasSuffix(prompt, "Answer:") {
		t.Fatalf("prompt layout wrong: %q", prompt)
	}
	// With demos: examples appear before the query.
	demo := Demo{Pair: record.LabeledPair{Pair: pair, Match: true}, Dataset: "X"}
	m.SetDemos([]Demo{demo}, DemoHandPicked)
	prompt = m.BuildPrompt(pair, record.SerializeOptions{})
	if !strings.Contains(prompt, "Example 1:") || !strings.Contains(prompt, "Answer: Yes") {
		t.Fatalf("demo prompt layout wrong: %q", prompt)
	}
}

func TestDemoStrategyStrings(t *testing.T) {
	if DemoNone.String() != "none" || DemoHandPicked.String() != "hand-picked" || DemoRandom.String() != "random-selected" {
		t.Fatal("demo strategy names wrong")
	}
}

func TestProfilesRegistry(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("All() has %d profiles, want 12", len(all))
	}
	seen := make(map[string]bool)
	for _, p := range all {
		if seen[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if p.ParamsMillions <= 0 {
			t.Errorf("%s has no parameter count", p.Name)
		}
	}
	if _, ok := ByName("GPT-4"); !ok {
		t.Fatal("ByName(GPT-4) failed")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("ByName should fail for unknown model")
	}
	open := OpenWeightModels()
	if len(open) != 9 {
		t.Fatalf("OpenWeightModels() = %d, want 9 (Table 5 rows)", len(open))
	}
}

func TestAdaptiveThresholdSeparatesBimodal(t *testing.T) {
	var scores []float64
	for i := 0; i < 800; i++ {
		scores = append(scores, 0.1+0.001*float64(i%50))
	}
	for i := 0; i < 200; i++ {
		scores = append(scores, 0.85+0.001*float64(i%50))
	}
	thr := adaptiveThreshold(scores)
	if thr <= 0.2 || thr >= 0.85 {
		t.Fatalf("threshold %.3f outside the gap", thr)
	}
}

func TestAdaptiveThresholdDegenerate(t *testing.T) {
	if thr := adaptiveThreshold(nil); thr != 0.5 {
		t.Fatalf("empty scores threshold = %v", thr)
	}
	same := []float64{0.4, 0.4, 0.4}
	thr := adaptiveThreshold(same)
	if thr <= 0.4-1e-9 || thr > 0.45 {
		t.Fatalf("constant scores threshold = %v", thr)
	}
}

func TestPromptTokensScales(t *testing.T) {
	short := PromptTokens("one two three")
	long := PromptTokens(strings.Repeat("word ", 100))
	if short <= 0 || long <= short {
		t.Fatalf("token estimates wrong: %d, %d", short, long)
	}
}
