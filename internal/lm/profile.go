// Package lm implements the language-model substrate of the study. The
// paper fine-tunes and prompts real transformer models; this reproduction
// replaces them with two mechanistic components that exercise the same
// pipeline:
//
//   - a fine-tuning encoder (hashed textual features whose richness scales
//     with model size) used by the trained matchers, and
//   - a capability-profiled zero-shot matching engine used by the prompted
//     matchers (MatchGPT, Jellyfish), where each simulated model's profile
//     gates which matching evidence it can exploit and how noisy its
//     decisions are.
//
// The profiles are calibrated so that the quality ladder and failure modes
// reported in the paper (GPT-3.5 < open LLMs < GPT-4o-Mini < GPT-4; strong
// LLM performance on domain-specific product language; demonstrations
// confusing weaker models) emerge from live predictions rather than being
// hard-coded. See DESIGN.md for the substitution rationale.
package lm

// Kind is the architectural family of a language model, which determines
// how a matcher can use it (encoder models need a prediction head,
// generative models can be fine-tuned model-agnostically or prompted).
type Kind int

// Model kinds.
const (
	KindEncoder Kind = iota // encoder-only: BERT, DeBERTa
	KindSeq2Seq             // encoder-decoder: T5
	KindDecoder             // decoder-only: GPT-2, LLaMA
	KindAPI                 // proprietary API-only: GPT-3.5/4/4o-Mini
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindEncoder:
		return "encoder"
	case KindSeq2Seq:
		return "seq2seq"
	case KindDecoder:
		return "decoder"
	case KindAPI:
		return "api"
	default:
		return "unknown"
	}
}

// Capabilities parameterises a model's zero-shot matching behaviour. Every
// field is a strength in [0, 1]; the prompting engine uses them to gate
// evidence signals (see evidence.go).
type Capabilities struct {
	// Normalization is the ability to see through surface variation:
	// casing, punctuation, token reordering.
	Normalization float64
	// Semantics is the coverage of world knowledge — abbreviations,
	// synonyms, brand/venue aliases ("VLDB" = "very large data bases").
	Semantics float64
	// Numeracy is the ability to reconcile numeric formats and tolerate
	// small numeric differences while catching large ones.
	Numeracy float64
	// Attention is the ability to weight rare discriminative tokens (model
	// numbers, phone numbers) over frequent filler tokens.
	Attention float64
	// Robustness is resistance to long noisy free-text fields (marketing
	// descriptions) — the paper's Finding 4 behaviour on WDC/WAAM.
	Robustness float64
	// Calibration shifts the decision threshold toward the optimum; poorly
	// calibrated models over- or under-predict matches on skewed data.
	Calibration float64
	// DecisionNoise is the standard deviation of logit noise; smaller for
	// more capable models.
	DecisionNoise float64
	// DemoGain is the per-demonstration effect of in-context examples from
	// out-of-distribution datasets: negative values model the confusion
	// the paper observes for GPT-3.5/GPT-4o-Mini, positive values the
	// subtle gains of GPT-4 (Table 4).
	DemoGain float64
	// DemoNoise is extra decision noise per demonstration, modelling the
	// increased sensitivity demonstrations introduce.
	DemoNoise float64
}

// Profile describes one language model in the study.
type Profile struct {
	// Name is the model name as used in the paper's tables.
	Name string
	// ParamsMillions is the (assumed) parameter count in millions, as the
	// paper reports it (e.g. 1,760,000 for GPT-4).
	ParamsMillions float64
	// Kind is the architecture family.
	Kind Kind
	// OpenWeight reports whether the model can be self-hosted; API-only
	// models are priced per token instead.
	OpenWeight bool
	// RAMGB is the 16-bit-precision memory footprint used in Table 5
	// (open-weight models only).
	RAMGB float64
	// FineTunable reports whether the study fine-tunes this model (the
	// SLMs) rather than prompting it.
	FineTunable bool
	// Zero holds the zero-shot capabilities (prompted models).
	Zero Capabilities
	// Capacity holds the fine-tuning encoder capacity (fine-tuned models).
	Capacity EncoderCapacity
}

// EncoderCapacity maps model scale to encoder richness for fine-tuning.
type EncoderCapacity struct {
	// HashWidth is the feature-space width (larger = fewer collisions =
	// more distinctions representable).
	HashWidth int
	// CharGrams enables character n-gram features (subword sensitivity).
	CharGrams bool
	// Hidden is the prediction-head hidden size; 0 means a linear head.
	Hidden int
	// Epochs is the number of fine-tuning passes.
	Epochs int
	// LearnRate is the fine-tuning step size.
	LearnRate float64
	// Pretraining is the strength [0,1] of pretrained lexical knowledge
	// mixed into the features (IDF quality, normalisation of rare domain
	// tokens). Larger pretrained models start from better text
	// representations — the mechanism behind Finding 4's gap on
	// domain-specific language.
	Pretraining float64
}

// Profiles for every model in the study, keyed by the names used in the
// paper's tables. Parameter counts, RAM footprints, and the
// open-weight/API split follow Tables 3 and 5.
var (
	// BERT backs Ditto (110M params).
	BERT = Profile{
		Name: "BERT", ParamsMillions: 110, Kind: KindEncoder, OpenWeight: true,
		RAMGB: 0.21, FineTunable: true,
		Capacity: EncoderCapacity{
			HashWidth: 1 << 14, CharGrams: false, Hidden: 0,
			Epochs: 3, LearnRate: 0.02, Pretraining: 0.17,
		},
	}
	// DeBERTa backs Unicorn (143M params).
	DeBERTa = Profile{
		Name: "DeBERTa", ParamsMillions: 143, Kind: KindEncoder, OpenWeight: true,
		RAMGB: 0.27, FineTunable: true,
		Capacity: EncoderCapacity{
			HashWidth: 1 << 15, CharGrams: true, Hidden: 24,
			Epochs: 4, LearnRate: 0.01, Pretraining: 0.56,
		},
	}
	// GPT2 backs AnyMatch[GPT-2] (124M params).
	GPT2 = Profile{
		Name: "GPT-2", ParamsMillions: 124, Kind: KindDecoder, OpenWeight: true,
		RAMGB: 0.26, FineTunable: true,
		Capacity: EncoderCapacity{
			HashWidth: 1 << 15, CharGrams: true, Hidden: 16,
			Epochs: 4, LearnRate: 0.012, Pretraining: 0.60,
		},
	}
	// T5 backs AnyMatch[T5] (220M params).
	T5 = Profile{
		Name: "T5", ParamsMillions: 220, Kind: KindSeq2Seq, OpenWeight: true,
		RAMGB: 0.54, FineTunable: true,
		Capacity: EncoderCapacity{
			HashWidth: 1 << 15, CharGrams: true, Hidden: 12,
			Epochs: 3, LearnRate: 0.012, Pretraining: 0.46,
		},
	}
	// LLaMA32 backs AnyMatch[LLaMA3.2] (1.3B params).
	LLaMA32 = Profile{
		Name: "LLaMA3.2", ParamsMillions: 1300, Kind: KindDecoder, OpenWeight: true,
		RAMGB: 2.30, FineTunable: true,
		Capacity: EncoderCapacity{
			HashWidth: 1 << 17, CharGrams: true, Hidden: 32,
			Epochs: 5, LearnRate: 0.008, Pretraining: 0.93,
		},
	}
	// LLaMA213B backs Jellyfish (13B params, instruction-tuned).
	LLaMA213B = Profile{
		Name: "LLaMA2-13B", ParamsMillions: 13000, Kind: KindDecoder, OpenWeight: true,
		RAMGB: 24.46,
		Zero: Capabilities{
			Normalization: 0.83, Semantics: 0.68, Numeracy: 0.58,
			Attention: 0.55, Robustness: 0.50, Calibration: 0.60,
			DecisionNoise: 1.1, DemoGain: -0.05, DemoNoise: 0.25,
		},
	}
	// Mixtral8x7B backs MatchGPT[Mixtral-8x7B] (56B params).
	Mixtral8x7B = Profile{
		Name: "Mixtral-8x7B", ParamsMillions: 56000, Kind: KindDecoder, OpenWeight: true,
		RAMGB: 73.73,
		Zero: Capabilities{
			Normalization: 0.75, Semantics: 0.58, Numeracy: 0.45,
			Attention: 0.42, Robustness: 0.40, Calibration: 0.45,
			DecisionNoise: 1.5, DemoGain: -0.08, DemoNoise: 0.35,
		},
	}
	// SOLAR backs MatchGPT[SOLAR] (70B params).
	SOLAR = Profile{
		Name: "SOLAR", ParamsMillions: 70000, Kind: KindDecoder, OpenWeight: true,
		RAMGB: 128.64,
		Zero: Capabilities{
			Normalization: 0.78, Semantics: 0.60, Numeracy: 0.48,
			Attention: 0.45, Robustness: 0.45, Calibration: 0.45,
			DecisionNoise: 1.4, DemoGain: -0.08, DemoNoise: 0.35,
		},
	}
	// Beluga2 backs MatchGPT[Beluga2] (70B params).
	Beluga2 = Profile{
		Name: "Beluga2", ParamsMillions: 70000, Kind: KindDecoder, OpenWeight: true,
		RAMGB: 128.64,
		Zero: Capabilities{
			Normalization: 0.82, Semantics: 0.66, Numeracy: 0.55,
			Attention: 0.55, Robustness: 0.52, Calibration: 0.55,
			DecisionNoise: 1.2, DemoGain: -0.06, DemoNoise: 0.30,
		},
	}
	// GPT35Turbo backs MatchGPT[GPT-3.5-Turbo] (assumed 175B params).
	GPT35Turbo = Profile{
		Name: "GPT-3.5-Turbo", ParamsMillions: 175000, Kind: KindAPI,
		Zero: Capabilities{
			Normalization: 0.80, Semantics: 0.70, Numeracy: 0.55,
			Attention: 0.45, Robustness: 0.55, Calibration: 0.20,
			DecisionNoise: 2.2, DemoGain: -0.20, DemoNoise: 0.60,
		},
	}
	// GPT4oMini backs MatchGPT[GPT-4o-Mini] (assumed 8B params).
	GPT4oMini = Profile{
		Name: "GPT-4o-Mini", ParamsMillions: 8000, Kind: KindAPI,
		Zero: Capabilities{
			Normalization: 0.92, Semantics: 0.86, Numeracy: 0.80,
			Attention: 0.74, Robustness: 0.80, Calibration: 0.68,
			DecisionNoise: 1.2, DemoGain: -0.10, DemoNoise: 0.30,
		},
	}
	// GPT4 backs MatchGPT[GPT-4] (assumed 1.76T params).
	GPT4 = Profile{
		Name: "GPT-4", ParamsMillions: 1760000, Kind: KindAPI,
		Zero: Capabilities{
			Normalization: 0.98, Semantics: 0.96, Numeracy: 0.92,
			Attention: 0.90, Robustness: 0.92, Calibration: 0.90,
			DecisionNoise: 0.8, DemoGain: +0.06, DemoNoise: 0.08,
		},
	}
)

// All returns every model profile in the study.
func All() []Profile {
	return []Profile{
		BERT, GPT2, DeBERTa, T5, LLaMA32,
		LLaMA213B, Mixtral8x7B, SOLAR, Beluga2,
		GPT35Turbo, GPT4oMini, GPT4,
	}
}

// ByName returns the profile with the given name and whether it exists.
func ByName(name string) (Profile, bool) {
	for _, p := range All() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// OpenWeightModels returns the profiles that can be self-hosted (the rows
// of Table 5).
func OpenWeightModels() []Profile {
	var out []Profile
	for _, p := range All() {
		if p.OpenWeight {
			out = append(out, p)
		}
	}
	return out
}
