package lm

import (
	"fmt"

	"repro/internal/mlcore"
	"repro/internal/snap"
	"repro/internal/textsim"
)

// maxSnapshotHashWidth bounds the feature-space width a snapshot may
// declare; the largest study capacity is 1<<17, so anything near the
// limit is corruption, not configuration.
const maxSnapshotHashWidth = 1 << 24

// EncodeEncoder appends a fine-tuning encoder's state to e: the capacity
// parameters plus the IDF document-frequency table (pretrained base and
// observed fine-tuning corpus combined). The hasher is derived from the
// hash width, so it needs no bytes of its own.
func EncodeEncoder(e *snap.Enc, enc *Encoder) {
	e.Str("encoder/v1")
	c := enc.capacity
	e.Int(c.HashWidth)
	e.Bool(c.CharGrams)
	e.Int(c.Hidden)
	e.Int(c.Epochs)
	e.F64(c.LearnRate)
	e.F64(c.Pretraining)
	tokens, counts := enc.idf.ExportDocFreq()
	e.Int(enc.idf.DocCount())
	e.Strs(tokens)
	e.Ints(counts)
}

// DecodeEncoder reads an encoder written by EncodeEncoder. The returned
// encoder featurises bit-identically to the snapshotted one: encoding is
// a pure function of capacity and the IDF table.
func DecodeEncoder(d *snap.Dec) (*Encoder, error) {
	d.Tag("encoder/v1")
	c := EncoderCapacity{
		HashWidth:   d.Int(),
		CharGrams:   d.Bool(),
		Hidden:      d.Int(),
		Epochs:      d.Int(),
		LearnRate:   d.F64(),
		Pretraining: d.F64(),
	}
	docCount := d.Int()
	tokens := d.Strs()
	counts := d.Ints()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if c.HashWidth <= 0 || c.HashWidth > maxSnapshotHashWidth {
		return nil, fmt.Errorf("%w: encoder hash width %d", snap.ErrCorrupt, c.HashWidth)
	}
	idf, err := textsim.NewWeighterFromCounts(docCount, tokens, counts)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", snap.ErrCorrupt, err)
	}
	return &Encoder{
		capacity: c,
		hasher:   mlcore.NewHasher(c.HashWidth),
		idf:      idf,
	}, nil
}
