package active

import (
	"testing"

	"repro/internal/datasets"
	"repro/internal/record"
	"repro/internal/stats"
)

// splitPoolEval partitions a benchmark dataset into a labeling pool and an
// evaluation set.
func splitPoolEval(t *testing.T, name string, poolN, evalN int) (pool, evalSet []record.LabeledPair) {
	t.Helper()
	d := datasets.MustGenerate(name, 42)
	rng := stats.NewRNG(5)
	perm := rng.Perm(len(d.Pairs))
	for _, i := range perm {
		p := d.Pairs[i]
		switch {
		case len(pool) < poolN:
			pool = append(pool, p)
		case len(evalSet) < evalN:
			evalSet = append(evalSet, p)
		}
	}
	return pool, evalSet
}

func TestRunProducesMonotoneLabelCurve(t *testing.T) {
	pool, evalSet := splitPoolEval(t, "FOZA", 400, 300)
	cfg := DefaultConfig()
	cfg.Budget = 60
	cfg.Seed = 20
	cfg.BatchSize = 20
	res, err := Run(pool, evalSet, Uncertainty, cfg, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) < 2 {
		t.Fatalf("curve has %d points", len(res.Curve))
	}
	prev := 0
	for _, pt := range res.Curve {
		if pt.Labels <= prev && prev != 0 {
			t.Fatalf("label counts not increasing: %+v", res.Curve)
		}
		prev = pt.Labels
		if pt.F1 < 0 || pt.F1 > 100 {
			t.Fatalf("F1 out of range: %+v", pt)
		}
	}
	if res.Curve[len(res.Curve)-1].Labels != cfg.Budget {
		t.Fatalf("budget not exhausted: %+v", res.Curve)
	}
	if res.FinalF1 != res.Curve[len(res.Curve)-1].F1 {
		t.Fatal("FinalF1 disagrees with curve")
	}
}

func TestStrategiesAllRun(t *testing.T) {
	pool, evalSet := splitPoolEval(t, "ZOYE", 300, 140)
	cfg := DefaultConfig()
	cfg.Budget = 40
	cfg.Seed = 16
	cfg.BatchSize = 12
	for _, s := range []Strategy{Random, Uncertainty, Committee} {
		res, err := Run(pool, evalSet, s, cfg, stats.NewRNG(2))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Strategy != s {
			t.Fatalf("%v: strategy not recorded", s)
		}
	}
}

func TestActiveBeatsOrMatchesRandomEventually(t *testing.T) {
	// On a dataset with informative uncertainty structure, active
	// selection should reach at least random-selection quality with the
	// same budget (averaged over a few seeds to damp noise).
	pool, evalSet := splitPoolEval(t, "DBAC", 800, 400)
	cfg := DefaultConfig()
	cfg.Budget = 80
	cfg.Seed = 20
	cfg.BatchSize = 20
	avg := func(s Strategy) float64 {
		sum := 0.0
		for seed := uint64(1); seed <= 3; seed++ {
			res, err := Run(pool, evalSet, s, cfg, stats.NewRNG(seed))
			if err != nil {
				t.Fatal(err)
			}
			sum += res.FinalF1
		}
		return sum / 3
	}
	random := avg(Random)
	uncertain := avg(Uncertainty)
	if uncertain < random-6 {
		t.Fatalf("uncertainty sampling (%.1f) far below random (%.1f)", uncertain, random)
	}
}

func TestBudgetClamping(t *testing.T) {
	pool, evalSet := splitPoolEval(t, "BEER", 30, 50)
	cfg := DefaultConfig()
	cfg.Budget = 500 // exceeds pool
	cfg.Seed = 10
	res, err := Run(pool, evalSet, Random, cfg, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	last := res.Curve[len(res.Curve)-1]
	if last.Labels > len(pool) {
		t.Fatalf("labeled more pairs than exist: %d > %d", last.Labels, len(pool))
	}
}

func TestStrategyStrings(t *testing.T) {
	if Random.String() != "random" || Uncertainty.String() != "uncertainty" || Committee.String() != "committee" {
		t.Fatal("strategy names wrong")
	}
}

func TestTopNBy(t *testing.T) {
	got := topNBy([]int{10, 20, 30, 40}, 2, func(i int) float64 { return float64(i) })
	if len(got) != 2 || got[0] != 40 || got[1] != 30 {
		t.Fatalf("topNBy = %v", got)
	}
}
