// Package active implements the low-resource entity-matching setting the
// paper contrasts with its cross-dataset setup (§6, Meduri et al.): a
// small labeling budget is spent interactively, the learner picking which
// candidate pairs a human oracle should label next. Uncertainty sampling
// and query-by-committee are provided, alongside the random-sampling
// baseline that active selection must beat to justify the machinery.
package active

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/lm"
	"repro/internal/mlcore"
	"repro/internal/par"
	"repro/internal/record"
	"repro/internal/stats"
)

// Strategy selects which unlabeled pairs to query next.
type Strategy int

// Query strategies.
const (
	// Random queries uniformly — the baseline.
	Random Strategy = iota
	// Uncertainty queries the pairs whose current prediction is closest
	// to the decision boundary.
	Uncertainty
	// Committee queries the pairs a bootstrap committee disagrees on most.
	Committee
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case Random:
		return "random"
	case Uncertainty:
		return "uncertainty"
	case Committee:
		return "committee"
	default:
		return "unknown"
	}
}

// Config controls the active-learning loop.
type Config struct {
	// Budget is the total number of labels the oracle will provide.
	Budget int
	// Seed is the number of initial random labels before active selection
	// starts (every strategy needs a bootstrap).
	Seed int
	// BatchSize is the number of labels queried per round.
	BatchSize int
	// CommitteeSize is the bootstrap committee size (Committee strategy).
	CommitteeSize int
	// Capacity is the encoder capacity of the learner.
	Capacity lm.EncoderCapacity
}

// DefaultConfig returns a laptop-scale loop: 100 labels in rounds of 10.
func DefaultConfig() Config {
	return Config{
		Budget: 100, Seed: 20, BatchSize: 10, CommitteeSize: 5,
		Capacity: lm.GPT2.Capacity,
	}
}

// CurvePoint records model quality after a number of labels.
type CurvePoint struct {
	Labels int
	F1     float64
}

// Result is the outcome of one active-learning run.
type Result struct {
	Strategy Strategy
	// Curve is the learning curve on the held-out evaluation pairs.
	Curve []CurvePoint
	// FinalF1 is the F1 at budget exhaustion.
	FinalF1 float64
}

// Run executes the active-learning loop on a labeled pool: the labels are
// hidden behind the oracle and only revealed when queried. Evaluation uses
// the separate eval set.
func Run(pool, evalSet []record.LabeledPair, strategy Strategy, cfg Config, rng *stats.RNG) (Result, error) {
	if cfg.Budget > len(pool) {
		cfg.Budget = len(pool)
	}
	if cfg.Seed > cfg.Budget {
		cfg.Seed = cfg.Budget
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 10
	}
	enc := lm.NewEncoder(cfg.Capacity)
	for _, p := range pool {
		enc.ObserveCorpus(record.SerializeRecord(p.Left, record.SerializeOptions{}))
	}

	// Pre-encode everything once (the loop re-trains repeatedly).
	poolX := make([]mlcore.SparseVec, len(pool))
	for i, p := range pool {
		poolX[i] = enc.Encode(p.Pair, record.SerializeOptions{})
	}
	evalX := make([]mlcore.SparseVec, len(evalSet))
	for i, p := range evalSet {
		evalX[i] = enc.Encode(p.Pair, record.SerializeOptions{})
	}

	labeled := make(map[int]bool)
	res := Result{Strategy: strategy}

	// Bootstrap with random labels.
	for _, i := range rng.Sample(len(pool), cfg.Seed) {
		labeled[i] = true
	}

	var head *mlcore.MLP
	train := func() {
		var examples []mlcore.Example
		for i := range labeled {
			examples = append(examples, mlcore.Example{X: poolX[i], Y: pool[i].Label()})
		}
		head = mlcore.NewMLP(mlcore.MLPConfig{
			Dim: enc.Dim(), Hidden: 12, Epochs: 8, LearnRate: 0.01, L2: 1e-6,
		}, rng.Split(fmt.Sprintf("init%d", len(labeled))))
		head.Train(examples, rng.Split(fmt.Sprintf("train%d", len(labeled))))
	}
	evaluate := func() float64 {
		var c eval.Confusion
		for i, p := range evalSet {
			c.Observe(head.Prob(evalX[i]) >= 0.5, p.Match)
		}
		return c.F1()
	}

	train()
	res.Curve = append(res.Curve, CurvePoint{Labels: len(labeled), F1: evaluate()})

	round := 0
	for len(labeled) < cfg.Budget {
		want := cfg.BatchSize
		if len(labeled)+want > cfg.Budget {
			want = cfg.Budget - len(labeled)
		}
		round++
		sel := selectQueries(selectionInput{
			strategy: strategy,
			poolX:    poolX,
			labeled:  labeled,
			labelOf:  func(i int) float64 { return pool[i].Label() },
			n:        want,
			head:     head,
			dim:      enc.Dim(),
			cfg:      cfg,
			rng:      rng.SplitN("round", round),
		})
		for _, i := range sel {
			labeled[i] = true
		}
		train()
		res.Curve = append(res.Curve, CurvePoint{Labels: len(labeled), F1: evaluate()})
	}
	res.FinalF1 = res.Curve[len(res.Curve)-1].F1
	return res, nil
}

// RunAll runs several strategies over the same pool and evaluation split,
// fanning the independent loops across the given worker count (see
// par.Workers). Each strategy derives its own RNG stream from the base
// seed ("active:"+name), so the result slice — in strategy argument
// order — is identical at any worker count.
func RunAll(pool, evalSet []record.LabeledPair, strategies []Strategy, cfg Config, seed uint64, workers int) ([]Result, error) {
	out := make([]Result, len(strategies))
	err := par.Do(len(strategies), workers, func(i int) error {
		s := strategies[i]
		rng := stats.NewRNG(seed).Split("active:" + s.String())
		res, err := Run(pool, evalSet, s, cfg, rng)
		if err != nil {
			return fmt.Errorf("active: strategy %s: %w", s, err)
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// selectionInput carries the query-selection state: the oracle-revealed
// labels are only accessible for already-labeled indices.
type selectionInput struct {
	strategy Strategy
	poolX    []mlcore.SparseVec
	labeled  map[int]bool
	labelOf  func(i int) float64 // valid only for labeled indices
	n        int
	head     *mlcore.MLP
	dim      int
	cfg      Config
	rng      *stats.RNG
}

// selectQueries picks the next batch of pool indices to label.
func selectQueries(in selectionInput) []int {
	var candidates []int
	for i := range in.poolX {
		if !in.labeled[i] {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) <= in.n {
		return candidates
	}

	switch in.strategy {
	case Uncertainty:
		// Closest to the boundary first.
		return topNBy(candidates, in.n, func(i int) float64 {
			p := in.head.Prob(in.poolX[i])
			return -absFloat(p - 0.5) // higher = more uncertain
		})
	case Committee:
		// Query-by-committee: bootstrap-resampled heads vote; the queried
		// pairs are those with the highest vote variance.
		var labeledIdx []int
		for i := range in.labeled {
			labeledIdx = append(labeledIdx, i)
		}
		committee := make([]*mlcore.MLP, in.cfg.CommitteeSize)
		for k := range committee {
			var examples []mlcore.Example
			for j := 0; j < len(labeledIdx); j++ {
				i := labeledIdx[in.rng.Intn(len(labeledIdx))]
				examples = append(examples, mlcore.Example{X: in.poolX[i], Y: in.labelOf(i)})
			}
			m := mlcore.NewMLP(mlcore.MLPConfig{
				Dim: in.dim, Hidden: 8, Epochs: 5, LearnRate: 0.01, L2: 1e-6,
			}, in.rng.SplitN("cinit", k))
			m.Train(examples, in.rng.SplitN("ctrain", k))
			committee[k] = m
		}
		return topNBy(candidates, in.n, func(i int) float64 {
			yes := 0
			for _, m := range committee {
				if m.Prob(in.poolX[i]) >= 0.5 {
					yes++
				}
			}
			frac := float64(yes) / float64(len(committee))
			return frac * (1 - frac) // vote variance, max at full split
		})
	default: // Random
		sel := in.rng.Sample(len(candidates), in.n)
		out := make([]int, len(sel))
		for k, j := range sel {
			out[k] = candidates[j]
		}
		return out
	}
}

func topNBy(candidates []int, n int, score func(int) float64) []int {
	type scored struct {
		idx int
		s   float64
	}
	best := make([]scored, 0, n+1)
	for _, i := range candidates {
		s := score(i)
		pos := len(best)
		for pos > 0 && best[pos-1].s < s {
			pos--
		}
		if pos < n {
			best = append(best, scored{})
			copy(best[pos+1:], best[pos:])
			best[pos] = scored{i, s}
			if len(best) > n {
				best = best[:n]
			}
		}
	}
	out := make([]int, len(best))
	for k, b := range best {
		out[k] = b.idx
	}
	return out
}

func absFloat(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
