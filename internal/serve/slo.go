package serve

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/backend"
	"repro/internal/cost"
	"repro/internal/flight"
	"repro/internal/slo"
)

// ErrSLOShed rejects a request under the breach-feeds-admission guard:
// while an SLO objective is in BREACH, a configured fraction of new
// cache-miss traffic is shed before it can queue, converting sustained
// burn into fast 429s instead of deeper queues. It wraps ErrOverloaded,
// so the HTTP mapping (429 + Retry-After) and the router's retryable
// classification follow automatically.
var ErrSLOShed = fmt.Errorf("serve: shedding under SLO breach: %w", backend.ErrOverloaded)

const (
	// stragglerFactor sets the straggler threshold at this multiple of
	// the live p99: a request that slow is tail evidence worth dumping.
	stragglerFactor = 4
	// minStragglerUS floors the threshold so microsecond-fast servers do
	// not dump on every scheduler hiccup.
	minStragglerUS = 1000
)

// initSLO builds the SLO engine from Config.SLOSpecs and binds every
// objective to the server's own cumulative instruments:
//
//	pNN ceilings   → the request latency histogram
//	shed ceilings  → (queue-full + draining + SLO sheds) / requests
//	error ceilings → unrouted: deadline failures / requests;
//	                 routed: one objective per tier (failures/attempts)
//	cost ceilings  → (own priced dollars + routed bill) per 1K pairs
//
// F1 floors need labeled traffic, which the serving path never sees —
// they are rejected here and belong to emroute -slo-assert.
func (s *Server) initSLO() error {
	specs := s.cfg.SLOSpecs
	if len(specs) == 0 {
		return nil
	}
	res := s.cfg.SLOResolution
	if res <= 0 {
		res = autoResolution(specs)
	}
	e := slo.NewEngine(slo.Config{Clock: s.cfg.SLOClock, Resolution: res})
	m := &s.metrics
	var routedErrs []slo.Spec
	for _, sp := range specs {
		var err error
		switch sp.Kind {
		case slo.KindLatency:
			err = e.AddLatency(sp, m.latency)
		case slo.KindRatio:
			if sp.Name == "error" {
				if s.router != nil {
					// Per-tier binding happens below, after the loop.
					routedErrs = append(routedErrs, sp)
					continue
				}
				err = e.AddRatio(sp,
					func() float64 { return float64(m.deadlineExceeded.Load()) },
					func() float64 { return float64(m.requests.Load()) })
			} else {
				err = e.AddRatio(sp,
					func() float64 {
						return float64(m.shedQueueFull.Load() + m.shedDraining.Load() + m.shedSLO.Load())
					},
					func() float64 { return float64(m.requests.Load()) })
			}
		case slo.KindCost:
			err = e.AddCost(sp,
				func() float64 {
					d := cost.Dollars(m.scoredTokens.Load(), s.pricingRate)
					if s.router != nil {
						d += s.router.TotalCostUSD()
					}
					return d
				},
				func() float64 { return float64(m.pairsScored.Load() + m.pairsCached.Load()) })
		case slo.KindF1:
			err = fmt.Errorf("serve: %s: f1 floors need labeled traffic; use emroute -slo-assert", sp)
		default:
			err = fmt.Errorf("serve: unsupported SLO kind %s", sp.Kind)
		}
		if err != nil {
			return err
		}
	}
	if len(routedErrs) > 0 {
		if err := s.router.BindSLOs(e, routedErrs); err != nil {
			return err
		}
	}
	e.RegisterMetrics(s.reg)
	e.OnTransition(s.onSLOTransition)
	s.sloEngine = e
	return nil
}

// autoResolution derives the engine sample spacing from the tightest
// short window: five samples per short window, clamped to [50ms, 1s].
func autoResolution(specs []slo.Spec) time.Duration {
	res := time.Second
	for _, sp := range specs {
		if r := sp.Short / 5; r < res {
			res = r
		}
	}
	if res < 50*time.Millisecond {
		res = 50 * time.Millisecond
	}
	return res
}

// onSLOTransition is the engine callback wired at construction: breach
// transitions dump flight-recorder evidence and count, and every
// transition re-derives the admission guard from the worst state.
// Callbacks fire from the tick loop, never a request path, so the
// synchronous dump is safe.
func (s *Server) onSLOTransition(tr slo.Transition) {
	if tr.To == slo.Breach {
		s.metrics.sloBreaches.Add(1)
		_, _ = s.fdump.Trigger("breach-" + tr.Name)
	}
	if s.cfg.BreachShedPermille > 0 {
		if s.sloEngine.Worst() == slo.Breach {
			s.preShed.Store(int64(s.cfg.BreachShedPermille))
		} else {
			s.preShed.Store(0)
		}
	}
	if cb := s.cfg.OnSLOTransition; cb != nil {
		cb(tr)
	}
}

// TickSLO runs one evaluation pass over every bound objective and
// refreshes the flight recorder's straggler threshold from the live
// p99. The background loop calls it once per tick interval; tests with
// SLOTick < 0 drive it directly under a virtual clock. The returned
// slice is the engine's scratch — copy to retain.
func (s *Server) TickSLO() []slo.Status {
	out := s.sloEngine.Tick()
	if s.flight != nil {
		if p99 := s.metrics.latency.Quantile(0.99); p99 > 0 {
			thr := int64(p99) * stragglerFactor
			if thr < minStragglerUS {
				thr = minStragglerUS
			}
			s.flight.SetStragglerUS(thr)
		}
	}
	return out
}

// sloLoop ticks the engine until Shutdown closes sloStop.
func (s *Server) sloLoop(tick time.Duration) {
	defer s.workers.Done()
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.sloStop:
			return
		case <-t.C:
			s.TickSLO()
		}
	}
}

// SLO returns the server's SLO engine, or nil when no objectives are
// configured (the nil engine is a valid disabled engine).
func (s *Server) SLO() *slo.Engine { return s.sloEngine }

// Flight returns the per-request flight recorder, or nil when disabled.
func (s *Server) Flight() *flight.Recorder { return s.flight }

// FlightDump returns the evidence dumper, or nil when disabled.
func (s *Server) FlightDump() *flight.Dumper { return s.fdump }

// SLOResponse is the /slo body: the worst state, the breach count, and
// one Status per objective. emwatch polls it.
type SLOResponse struct {
	Matcher    string       `json:"matcher"`
	State      slo.State    `json:"state"`
	Breaches   int64        `json:"breaches"`
	Objectives []slo.Status `json:"objectives"`
}

func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if s.sloEngine == nil {
		writeError(w, http.StatusNotFound, "no SLOs configured")
		return
	}
	writeJSON(w, http.StatusOK, SLOResponse{
		Matcher:    s.matcher.Name(),
		State:      s.sloEngine.Worst(),
		Breaches:   s.metrics.sloBreaches.Load(),
		Objectives: s.sloEngine.Snapshot(),
	})
}

// shedCode maps an admission rejection onto its flight-record code.
func shedCode(err error) flight.Code {
	switch {
	case errors.Is(err, ErrSLOShed):
		return flight.CodeShedSLO
	case errors.Is(err, ErrQueueFull):
		return flight.CodeShedQueue
	case errors.Is(err, ErrDraining):
		return flight.CodeShedDrain
	}
	return flight.CodeError
}

// flightEdge records a request that never reached a worker — pure cache
// hits and admission sheds. Nil-safe; the disabled path is one branch.
func (s *Server) flightEdge(key uint64, code flight.Code, pairs int) {
	if s.flight == nil {
		return
	}
	s.flight.Log(flight.Record{
		TimeUS: time.Since(s.started).Microseconds(),
		Key:    key,
		Code:   code,
		Tier:   -1,
		Pairs:  flight.ClampPairs(pairs),
	})
}

// flightScored records a request the worker pool finished (scored,
// expired, or degraded), splitting its life into queue wait, batch
// residency and predict time, and fires the straggler dump when the
// total latency crosses the published p99-derived threshold.
func (s *Server) flightScored(r *request, code flight.Code, tier int8, predictUS int64) {
	if s.flight == nil {
		return
	}
	now := time.Now()
	s.flight.Log(flight.Record{
		TimeUS:    now.Sub(s.started).Microseconds(),
		Key:       r.key,
		Code:      code,
		Tier:      tier,
		Pairs:     flight.ClampPairs(len(r.pairs)),
		QueueUS:   flight.ClampUS(r.pickup.Sub(r.enqueued).Microseconds()),
		BatchUS:   flight.ClampUS(now.Sub(r.pickup).Microseconds()),
		PredictUS: flight.ClampUS(predictUS),
		CostNano:  int64(r.res.CostUSD * 1e9),
	})
	if s.flight.IsStraggler(now.Sub(r.enqueued).Microseconds()) {
		s.fdump.TriggerAsync("straggler")
	}
}
