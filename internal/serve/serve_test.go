package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/datasets"
	"repro/internal/eval"
	"repro/internal/matchers"
	"repro/internal/record"
	"repro/internal/stats"
)

// stubMatcher is a controllable matcher for pipeline-behaviour tests: it
// matches when the first attribute values are equal, can block inside
// Predict until released, and counts invocations.
type stubMatcher struct {
	entered chan struct{} // receives one signal per Predict entry, if non-nil
	release chan struct{} // Predict waits for close, if non-nil
	calls   atomic.Int64
	pairs   atomic.Int64
}

func (s *stubMatcher) Name() string                            { return "Stub" }
func (s *stubMatcher) ParamsMillions() float64                 { return 0 }
func (s *stubMatcher) Train(_ []*record.Dataset, _ *stats.RNG) {}
func (s *stubMatcher) Predict(task matchers.Task) []bool {
	s.calls.Add(1)
	s.pairs.Add(int64(len(task.Pairs)))
	if s.entered != nil {
		s.entered <- struct{}{}
	}
	if s.release != nil {
		<-s.release
	}
	out := make([]bool, len(task.Pairs))
	for i, p := range task.Pairs {
		out[i] = len(p.Left.Values) > 0 && len(p.Right.Values) > 0 &&
			p.Left.Values[0] == p.Right.Values[0]
	}
	return out
}

func benchmarkPairs(t testing.TB, name string, n int) []record.Pair {
	t.Helper()
	d, err := datasets.Generate(name, eval.DatasetSeed)
	if err != nil {
		t.Fatal(err)
	}
	if n > len(d.Pairs) {
		n = len(d.Pairs)
	}
	pairs := make([]record.Pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = d.Pairs[i].Pair
	}
	return pairs
}

func trained(t testing.TB, name string) matchers.Matcher {
	t.Helper()
	m, needsTraining, err := matchers.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if needsTraining {
		t.Fatalf("%s needs transfer training, too slow for this test", name)
	}
	m.Train(nil, stats.NewRNG(1).Split("train"))
	return m
}

func postMatchJSON(t testing.TB, url string, req MatchRequest) (int, MatchResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/match", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mr MatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, mr
}

func toJSONPairs(pairs []record.Pair) []PairJSON {
	out := make([]PairJSON, len(pairs))
	for i, p := range pairs {
		out[i] = PairJSON{Left: p.Left.Values, Right: p.Right.Values}
	}
	return out
}

// TestServedBitIdenticalToOffline pins the acceptance criterion: for a
// batch-invariant matcher, predictions served over HTTP — whether the
// pairs arrive as one batch, as singles, or again from the cache — are
// bit-identical to one offline cmd/emmatch-style Predict over the same
// pairs.
func TestServedBitIdenticalToOffline(t *testing.T) {
	pairs := benchmarkPairs(t, "ABT", 120)
	m := trained(t, "stringsim")
	offline := m.Predict(matchers.Task{Pairs: pairs})

	srv, err := New(m, Config{MatcherName: "stringsim", CacheCapacity: 1 << 12, MaxBatch: 16, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	// First half as one batch request.
	half := len(pairs) / 2
	status, batchResp := postMatchJSON(t, hs.URL, MatchRequest{Pairs: toJSONPairs(pairs[:half])})
	if status != http.StatusOK {
		t.Fatalf("batch: status %d", status)
	}
	// Second half as concurrent singles (exercises micro-batch coalescing).
	singles := make([]bool, len(pairs)-half)
	var wg sync.WaitGroup
	for i := half; i < len(pairs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, r := postMatchJSON(t, hs.URL, MatchRequest{
				Left: pairs[i].Left.Values, Right: pairs[i].Right.Values,
			})
			if st != http.StatusOK {
				t.Errorf("single %d: status %d", i, st)
				return
			}
			singles[i-half] = r.Predictions[0]
		}(i)
	}
	wg.Wait()

	for i := 0; i < half; i++ {
		if batchResp.Predictions[i] != offline[i] {
			t.Fatalf("batch pair %d: served %v, offline %v", i, batchResp.Predictions[i], offline[i])
		}
	}
	for i := half; i < len(pairs); i++ {
		if singles[i-half] != offline[i] {
			t.Fatalf("single pair %d: served %v, offline %v", i, singles[i-half], offline[i])
		}
	}

	// Replay everything as one batch: now answered (at least partly) from
	// the cache, still bit-identical.
	status, replay := postMatchJSON(t, hs.URL, MatchRequest{Pairs: toJSONPairs(pairs)})
	if status != http.StatusOK {
		t.Fatalf("replay: status %d", status)
	}
	cachedCount := 0
	for i := range pairs {
		if replay.Predictions[i] != offline[i] {
			t.Fatalf("replay pair %d: served %v, offline %v", i, replay.Predictions[i], offline[i])
		}
		if replay.Cached[i] {
			cachedCount++
		}
	}
	if cachedCount == 0 {
		t.Fatal("replay should hit the prediction cache")
	}
}

// TestBatchEqualsSinglesPrompted pins the single-pair serving semantics of
// batch-sensitive prompted matchers: a batch request and a sequence of
// single requests produce bit-identical predictions, because every pair is
// scored as its own batch of one.
func TestBatchEqualsSinglesPrompted(t *testing.T) {
	pairs := benchmarkPairs(t, "FOZA", 40)
	m := trained(t, "gpt-4")
	srv, err := New(m, Config{MatcherName: "gpt-4", CacheCapacity: 0, MaxBatch: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	if srv.Semantics() != SemSinglePair {
		t.Fatalf("gpt-4 semantics = %v, want single-pair", srv.Semantics())
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	status, batch := postMatchJSON(t, hs.URL, MatchRequest{Pairs: toJSONPairs(pairs)})
	if status != http.StatusOK {
		t.Fatalf("batch: status %d", status)
	}
	if batch.CostUSD <= 0 {
		t.Fatal("gpt-4 predictions must be priced")
	}
	for i, p := range pairs {
		st, single := postMatchJSON(t, hs.URL, MatchRequest{Left: p.Left.Values, Right: p.Right.Values})
		if st != http.StatusOK {
			t.Fatalf("single %d: status %d", i, st)
		}
		if single.Predictions[0] != batch.Predictions[i] {
			t.Fatalf("pair %d: single %v != batch %v", i, single.Predictions[0], batch.Predictions[i])
		}
	}
}

// TestRequestBatchMatchesOffline pins ZeroER's request-batch semantics:
// the client's batch is the mixture's batch, so a served request equals
// offline Predict over the same pairs.
func TestRequestBatchMatchesOffline(t *testing.T) {
	pairs := benchmarkPairs(t, "FOZA", 80)
	m := trained(t, "zeroer")
	offline := m.Predict(matchers.Task{Pairs: pairs, Opts: record.SerializeOptions{Separator: record.DefaultSeparator}})

	srv, err := New(m, Config{MatcherName: "zeroer", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	if srv.Semantics() != SemRequestBatch {
		t.Fatalf("zeroer semantics = %v, want request-batch", srv.Semantics())
	}
	res, err := srv.Submit(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if res.Preds[i] != offline[i] {
			t.Fatalf("pair %d: served %v, offline %v", i, res.Preds[i], offline[i])
		}
		if res.Cached[i] {
			t.Fatal("request-batch results must bypass the prediction cache")
		}
	}
}

// TestCacheSkipsScoring verifies a cache hit never reaches the matcher —
// and therefore costs nothing on priced matchers.
func TestCacheSkipsScoring(t *testing.T) {
	stub := &stubMatcher{}
	srv, err := New(stub, Config{MatcherName: "stringsim", CacheCapacity: 64, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	pair := []record.Pair{{
		Left:  record.Record{Values: []string{"alpha", "1"}},
		Right: record.Record{Values: []string{"alpha", "2"}},
	}}
	if _, err := srv.Submit(context.Background(), pair); err != nil {
		t.Fatal(err)
	}
	if got := stub.calls.Load(); got != 1 {
		t.Fatalf("first request: %d matcher calls, want 1", got)
	}
	res, err := srv.Submit(context.Background(), pair)
	if err != nil {
		t.Fatal(err)
	}
	if got := stub.calls.Load(); got != 1 {
		t.Fatalf("cache hit still reached the matcher (%d calls)", got)
	}
	if !res.Cached[0] {
		t.Fatal("second request should be served from cache")
	}
	if hits, _ := srv.Cache().Stats(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
}

// TestDeadlineExceededWhileQueued pins the admission-control deadline
// path: a request whose deadline expires while it waits behind a busy
// worker fails with 503 and is discarded unscored.
func TestDeadlineExceededWhileQueued(t *testing.T) {
	stub := &stubMatcher{entered: make(chan struct{}, 4), release: make(chan struct{})}
	srv, err := New(stub, Config{MatcherName: "stringsim", Workers: 1, QueueDepth: 8, CacheCapacity: 0})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	blocker := record.Pair{Left: record.Record{Values: []string{"x"}}, Right: record.Record{Values: []string{"x"}}}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = srv.Submit(context.Background(), []record.Pair{blocker})
	}()
	<-stub.entered // the only worker is now stuck inside Predict

	status, _ := postMatchJSON(t, hs.URL, MatchRequest{
		Left: []string{"a"}, Right: []string{"b"}, DeadlineMs: 30,
	})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("deadline-exceeded status = %d, want 503", status)
	}

	close(stub.release)
	wg.Wait()
	srv.Shutdown()
	st := srv.Stats()
	if st.DeadlineExceeded != 1 {
		t.Fatalf("DeadlineExceeded = %d, want 1", st.DeadlineExceeded)
	}
	if st.PairsExpired != 1 {
		t.Fatalf("PairsExpired = %d, want 1 (expired request must be discarded unscored)", st.PairsExpired)
	}
	// The expired pair must never have reached the matcher: one call for
	// the blocker only.
	if calls := stub.calls.Load(); calls != 1 {
		t.Fatalf("matcher calls = %d, want 1", calls)
	}
}

// TestQueueFullShedsWith429 pins load shedding: with the one worker busy
// and the one-slot queue occupied, the next request is rejected
// immediately with 429.
func TestQueueFullShedsWith429(t *testing.T) {
	stub := &stubMatcher{entered: make(chan struct{}, 4), release: make(chan struct{})}
	srv, err := New(stub, Config{MatcherName: "stringsim", Workers: 1, QueueDepth: 1, CacheCapacity: 0})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	mkPair := func(s string) []record.Pair {
		return []record.Pair{{Left: record.Record{Values: []string{s}}, Right: record.Record{Values: []string{s}}}}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _, _ = srv.Submit(context.Background(), mkPair("worker")) }()
	<-stub.entered // worker occupied
	go func() { defer wg.Done(); _, _ = srv.Submit(context.Background(), mkPair("queued")) }()
	// Wait for the second request to occupy the queue slot.
	deadline := time.Now().Add(2 * time.Second)
	for srv.QueueDepth() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.QueueDepth() != 1 {
		t.Fatalf("queue depth = %d, want 1", srv.QueueDepth())
	}

	status, _ := postMatchJSON(t, hs.URL, MatchRequest{Left: []string{"a"}, Right: []string{"a"}})
	if status != http.StatusTooManyRequests {
		t.Fatalf("queue-full status = %d, want 429", status)
	}

	close(stub.release)
	wg.Wait()
	srv.Shutdown()
	if st := srv.Stats(); st.ShedQueueFull != 1 {
		t.Fatalf("ShedQueueFull = %d, want 1", st.ShedQueueFull)
	}
}

// TestGracefulShutdownDrains pins shutdown semantics: admitted requests
// complete, new requests are rejected with 503.
func TestGracefulShutdownDrains(t *testing.T) {
	stub := &stubMatcher{entered: make(chan struct{}, 4), release: make(chan struct{})}
	srv, err := New(stub, Config{MatcherName: "stringsim", Workers: 1, QueueDepth: 8, CacheCapacity: 0})
	if err != nil {
		t.Fatal(err)
	}
	pairs := []record.Pair{{Left: record.Record{Values: []string{"x"}}, Right: record.Record{Values: []string{"x"}}}}

	type outcome struct {
		res *MatchResult
		err error
	}
	results := make(chan outcome, 2)
	submit := func() {
		res, err := srv.Submit(context.Background(), pairs)
		results <- outcome{res, err}
	}
	go submit()
	<-stub.entered // first request being scored; only now submit the second
	go submit()
	// Wait until the second is admitted to the queue, so both predate
	// Shutdown.
	deadline := time.Now().Add(2 * time.Second)
	for srv.QueueDepth() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.QueueDepth() != 1 {
		t.Fatalf("queue depth = %d, want 1", srv.QueueDepth())
	}

	done := make(chan struct{})
	go func() { srv.Shutdown(); close(done) }()
	time.Sleep(10 * time.Millisecond) // let Shutdown flip draining
	if _, err := srv.Submit(context.Background(), pairs); err != ErrDraining {
		t.Fatalf("post-shutdown submit error = %v, want ErrDraining", err)
	}
	close(stub.release)
	<-done

	for i := 0; i < 2; i++ {
		o := <-results
		if o.err != nil {
			t.Fatalf("admitted request %d failed during drain: %v", i, o.err)
		}
		if !o.res.Preds[0] {
			t.Fatalf("admitted request %d: wrong prediction", i)
		}
	}
}

// TestOversizedRequestRejected pins the 413 path.
func TestOversizedRequestRejected(t *testing.T) {
	srv, err := New(trained(t, "stringsim"), Config{MatcherName: "stringsim", MaxPairsPerRequest: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	pairs := make([]PairJSON, 5)
	for i := range pairs {
		pairs[i] = PairJSON{Left: []string{fmt.Sprint(i)}, Right: []string{fmt.Sprint(i)}}
	}
	status, _ := postMatchJSON(t, hs.URL, MatchRequest{Pairs: pairs})
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized status = %d, want 413", status)
	}
}

// TestHealthzAndStats pins the observability endpoints.
func TestHealthzAndStats(t *testing.T) {
	srv, err := New(trained(t, "stringsim"), Config{MatcherName: "stringsim", CacheCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	postMatchJSON(t, hs.URL, MatchRequest{Left: []string{"a"}, Right: []string{"a"}})
	sresp, err := http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1 || st.RequestsOK != 1 || st.PairsScored != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Matcher != "StringSim" || st.Semantics != "batch-invariant" {
		t.Fatalf("stats identity = %q/%q", st.Matcher, st.Semantics)
	}
	if st.LatencyP50Us <= 0 {
		t.Fatal("latency histogram should have one observation")
	}

	// Draining flips healthz to 503.
	srv.Shutdown()
	resp2, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp2.StatusCode)
	}
}

// TestMicroBatchCoalescing verifies the dispatcher actually coalesces
// concurrent singles into multi-pair matcher invocations under a slow
// worker.
func TestMicroBatchCoalescing(t *testing.T) {
	stub := &stubMatcher{entered: make(chan struct{}, 64), release: make(chan struct{})}
	srv, err := New(stub, Config{MatcherName: "stringsim", Workers: 1, MaxBatch: 32, QueueDepth: 64, CacheCapacity: 0})
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	var wg sync.WaitGroup
	results := make([]*MatchResult, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := []record.Pair{{
				Left:  record.Record{Values: []string{fmt.Sprintf("v%d", i)}},
				Right: record.Record{Values: []string{fmt.Sprintf("v%d", i)}},
			}}
			res, err := srv.Submit(context.Background(), p)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	<-stub.entered // first batch (likely a single) holds the worker
	// The remaining requests pile into the queue; wait until they are all
	// there so the next batch must coalesce.
	deadline := time.Now().Add(2 * time.Second)
	for srv.QueueDepth() < n-1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stub.release)
	wg.Wait()
	srv.Shutdown()

	if calls, pairs := stub.calls.Load(), stub.pairs.Load(); pairs != n || calls >= n {
		t.Fatalf("coalescing: %d pairs over %d matcher calls, want %d pairs over <%d calls", pairs, calls, n, n)
	}
	for i, r := range results {
		if r == nil || !r.Preds[0] {
			t.Fatalf("request %d: wrong or missing prediction", i)
		}
	}
	st := srv.Stats()
	if st.MeanBatch <= 1 {
		t.Fatalf("mean batch = %.2f, want > 1", st.MeanBatch)
	}
}

func TestSemanticsClassification(t *testing.T) {
	cases := map[string]Semantics{
		"stringsim":      SemBatchInvariant,
		"ditto":          SemBatchInvariant,
		"unicorn":        SemBatchInvariant,
		"anymatch-llama": SemBatchInvariant,
		"zeroer":         SemRequestBatch,
		"gpt-4":          SemSinglePair,
		"GPT-4o-Mini":    SemSinglePair,
		"jellyfish":      SemSinglePair,
	}
	for name, want := range cases {
		if got := SemanticsFor(name); got != want {
			t.Errorf("SemanticsFor(%q) = %v, want %v", name, got, want)
		}
	}
}
