package serve

import (
	"context"
	"errors"
	"net/http"
	"testing"

	"repro/internal/backend"
	"repro/internal/datasets"
	"repro/internal/eval"
	"repro/internal/matchers"
	"repro/internal/record"
	"repro/internal/route"
	"repro/internal/stats"
)

func routedTestPairs(t *testing.T, n int) []record.Pair {
	t.Helper()
	d := datasets.MustGenerate("BEER", eval.DatasetSeed)
	if n > len(d.Pairs) {
		n = len(d.Pairs)
	}
	pairs := make([]record.Pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = d.Pairs[i].Pair
	}
	return pairs
}

func newRoutedServer(t *testing.T, rcfg route.Config, rate float64, scfg Config) (*Server, *route.Router, matchers.Matcher) {
	t.Helper()
	m := matchers.NewStringSim()
	m.Train(nil, stats.NewRNG(1))
	if rcfg.Clock == nil {
		rcfg.Clock = &route.VirtualClock{}
	}
	b := backend.NewSim("stringsim", m, backend.ProfileReliable.Clean(), rate, 21)
	r, err := route.New(rcfg, b)
	if err != nil {
		t.Fatal(err)
	}
	scfg.MatcherName = "stringsim"
	scfg.Router = r
	srv, err := New(m, scfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv, r, m
}

// Routed serving with a clean free tier must answer bit-identically to
// the matcher offline, and surface the router snapshot in /stats.
func TestRoutedServingDecisions(t *testing.T) {
	srv, _, m := newRoutedServer(t, route.Config{}, 0, Config{CacheCapacity: 128})
	defer srv.Shutdown()
	pairs := routedTestPairs(t, 48)
	want := m.Predict(matchers.Task{Pairs: pairs})

	res, err := srv.Submit(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.Preds[i] != want[i] {
			t.Fatalf("pair %d: routed %v, offline %v", i, res.Preds[i], want[i])
		}
	}
	if res.CostUSD != 0 {
		t.Fatalf("free tier billed $%g", res.CostUSD)
	}
	st := srv.Stats()
	if st.Routed == nil {
		t.Fatal("Stats().Routed is nil on a routed server")
	}
	if st.Routed.Pairs != int64(len(pairs)) {
		t.Fatalf("Routed.Pairs = %d, want %d", st.Routed.Pairs, len(pairs))
	}
	if st.Semantics != SemBatchInvariant.String() {
		t.Fatalf("routed semantics = %s, want batch-invariant", st.Semantics)
	}
}

// A priced routed tier bills through the router, and the bill flows into
// the per-request result and the server's TotalCostUSD exactly once.
func TestRoutedCostAccounting(t *testing.T) {
	rate := 0.015
	srv, r, _ := newRoutedServer(t, route.Config{}, rate, Config{})
	defer srv.Shutdown()
	pairs := routedTestPairs(t, 8)
	res, err := srv.Submit(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	if res.CostUSD <= 0 || res.Tokens <= 0 {
		t.Fatalf("routed request billed $%g / %d tokens, want > 0", res.CostUSD, res.Tokens)
	}
	want := r.TotalCostUSD()
	if diff := res.CostUSD - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("request bill $%g != router total $%g", res.CostUSD, want)
	}
	st := srv.Stats()
	if diff := st.TotalCostUSD - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("stats TotalCostUSD = %g, want %g (routed bill, counted once)", st.TotalCostUSD, want)
	}
	if st.ScoredTokens != 0 {
		t.Fatalf("server-side pricing ran on a routed server: %d tokens", st.ScoredTokens)
	}
}

// The serve shed signals are typed: they wrap the backend errors, so the
// router's retryable classification and the HTTP status mapping agree.
func TestShedErrorsTyped(t *testing.T) {
	if !errors.Is(ErrQueueFull, backend.ErrOverloaded) {
		t.Error("ErrQueueFull does not wrap backend.ErrOverloaded")
	}
	if !errors.Is(ErrDraining, backend.ErrUnavailable) {
		t.Error("ErrDraining does not wrap backend.ErrUnavailable")
	}
	if !backend.Retryable(ErrQueueFull) || !backend.Retryable(ErrDraining) {
		t.Error("shed signals must classify as retryable")
	}
	if backend.Retryable(ErrTooLarge) {
		t.Error("an oversized request is the client's fault, not retryable")
	}
	for err, want := range map[error]int{
		ErrQueueFull:           http.StatusTooManyRequests,
		ErrDraining:            http.StatusServiceUnavailable,
		ErrTooLarge:            http.StatusRequestEntityTooLarge,
		backend.ErrOverloaded:  http.StatusTooManyRequests,
		backend.ErrUnavailable: http.StatusServiceUnavailable,
		backend.ErrDeadline:    http.StatusServiceUnavailable,
	} {
		if got := StatusFor(err); got != want {
			t.Errorf("StatusFor(%v) = %d, want %d", err, got, want)
		}
	}
}

// Admission sheds feed the router's entry-tier breaker: sustained
// shedding trips it.
func TestRoutedShedFeedsBreaker(t *testing.T) {
	srv, r, _ := newRoutedServer(t,
		route.Config{Breaker: route.BreakerConfig{FailureThreshold: 2, Cooldown: 1 << 40}},
		0, Config{})
	srv.Shutdown() // every Submit from here on sheds with ErrDraining
	pairs := routedTestPairs(t, 1)
	for i := 0; i < 2; i++ {
		if _, err := srv.Submit(context.Background(), pairs); !errors.Is(err, ErrDraining) {
			t.Fatalf("submit %d: err = %v, want ErrDraining", i, err)
		}
	}
	if st := r.Stats(); st.Tiers[0].State != route.Open {
		t.Fatalf("entry-tier breaker state = %v after sustained shedding, want open", st.Tiers[0].State)
	}
}
