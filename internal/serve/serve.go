// Package serve is the online face of the reproduction: an entity-matching
// service that loads any matcher from the study and answers match requests
// over HTTP — the workload the ROADMAP's "heavy traffic" north star asks
// for, and the deployment scenario whose per-pair cost and latency the
// paper's Table 6 prices offline.
//
// The serving core has three load-bearing pieces:
//
//   - A micro-batching dispatcher (dispatch.go): concurrent requests enter
//     one bounded admission queue; pool workers drain the queue and
//     coalesce waiting pairs into bounded batches, so under load each
//     matcher invocation amortises its fixed costs over many pairs while
//     light traffic still sees single-pair latency.
//
//   - A sharded LRU prediction cache (cache.go) keyed by the canonical
//     serialized pair. A hit skips serialization, text profiling,
//     featurization and the model call entirely — and costs zero dollars
//     on prompted matchers. The serialize cache (internal/record) and the
//     process-wide text-profile cache (internal/textsim) sit underneath
//     for the misses, so even cold pairs never re-serialize or re-profile
//     hot records.
//
//   - Admission control: a bounded queue that sheds load with 429 when
//     full, per-request deadlines that fail queued work with 503 instead
//     of serving stale answers, context-propagated cancellation via
//     matchers.PredictCtx (the cancellation path shared with cmd/emmatch),
//     and graceful shutdown that drains in-flight batches before the
//     listener closes.
//
// # Serving semantics
//
// Offline, the study scores whole candidate sets in one batch, and some
// matchers are batch-sensitive: the prompted LLMs place their decision
// threshold adaptively from the batch's score distribution, and ZeroER
// fits its mixture on the full batch. Online traffic has no natural batch,
// so the service fixes the semantics per matcher class (SemanticsFor):
//
//   - Batch-invariant matchers (StringSim and the fine-tuned SLMs) score
//     each pair independently, so micro-batching is a pure optimisation:
//     predictions are bit-identical whether pairs arrive one at a time,
//     in one request, or coalesced — and identical to offline cmd/emmatch
//     output for the same pairs.
//
//   - Batch-sensitive prompted matchers (MatchGPT models, Jellyfish) are
//     served under single-pair semantics: every pair is scored as its own
//     batch of one, making the decision a deterministic function of the
//     pair alone — cacheable, and independent of request grouping.
//
//   - ZeroER is batch-only (its mixture needs the batch's similarity
//     distribution — a drawback the paper documents), so each request is
//     scored as its own batch and results bypass the prediction cache.
package serve

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cost"
	"repro/internal/flight"
	"repro/internal/matchers"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/record"
	"repro/internal/route"
	"repro/internal/slo"
	"repro/internal/textsim"
)

// Semantics fixes how a matcher's offline batch behaviour maps onto
// online traffic; see the package comment.
type Semantics int

const (
	// SemBatchInvariant marks per-pair-decomposable matchers: coalesced
	// micro-batches are scored in one Predict call with bit-identical
	// results to any other grouping.
	SemBatchInvariant Semantics = iota
	// SemSinglePair marks batch-sensitive prompted matchers: each pair is
	// scored as its own batch of one, so decisions depend only on the pair.
	SemSinglePair
	// SemRequestBatch marks batch-only matchers (ZeroER): the client's
	// request is the batch; results are not per-pair deterministic and
	// bypass the prediction cache.
	SemRequestBatch
)

// String returns the semantics name used by /healthz and /stats.
func (s Semantics) String() string {
	switch s {
	case SemBatchInvariant:
		return "batch-invariant"
	case SemSinglePair:
		return "single-pair"
	case SemRequestBatch:
		return "request-batch"
	default:
		return fmt.Sprintf("Semantics(%d)", int(s))
	}
}

// SemanticsFor classifies a registry matcher name.
func SemanticsFor(name string) Semantics {
	switch strings.ToLower(name) {
	case "zeroer":
		return SemRequestBatch
	case "stringsim", "ditto", "unicorn", "anymatch-gpt2", "anymatch-t5", "anymatch-llama":
		return SemBatchInvariant
	default:
		// Prompted LLM matchers: batch-adaptive thresholds make them
		// batch-sensitive offline, so they serve under single-pair
		// semantics.
		return SemSinglePair
	}
}

// Config parameterises a Server.
type Config struct {
	// MatcherName is the registry name the matcher was built from; it
	// selects serving semantics and the pricing model. Required.
	MatcherName string
	// Semantics overrides SemanticsFor(MatcherName) when non-nil (tests
	// inject stub matchers with explicit semantics).
	Semantics *Semantics

	// Workers is the scoring pool size; <=0 means one per CPU
	// (par.Workers).
	Workers int
	// MaxBatch bounds how many pairs a worker coalesces into one matcher
	// invocation; <=0 defaults to 64.
	MaxBatch int
	// BatchWait is how long a worker holding a non-full batch waits for
	// stragglers before scoring. Zero (the default) never waits: light
	// traffic gets immediate single-pair latency, heavy traffic fills
	// batches from the queue alone.
	BatchWait time.Duration
	// QueueDepth bounds the admission queue in requests; <=0 defaults to
	// 1024. A full queue sheds load with 429.
	QueueDepth int
	// MaxPairsPerRequest bounds one request's batch; <=0 defaults to 256.
	// Larger requests are rejected with 413.
	MaxPairsPerRequest int
	// DefaultDeadline bounds request latency when the client sets no
	// deadline_ms; zero means no default deadline.
	DefaultDeadline time.Duration
	// CacheCapacity is the prediction-cache size in entries; <=0 disables
	// caching. CacheShards is the shard count (defaults to 16).
	CacheCapacity int
	CacheShards   int

	// Tracer, when non-nil, records request/queue/batch/score spans for
	// every admitted request. Tracing never changes predictions; it only
	// observes.
	Tracer *obs.Tracer

	// Registry, when non-nil, is used instead of a freshly created
	// metrics registry — so a caller that wires other subsystems (e.g. a
	// snapshot store opened before the server exists) can expose all
	// metrics on one /metrics page.
	Registry *obs.Registry

	// Startup, when non-nil, describes how the served matcher came to be
	// ready (trained from scratch vs restored from a snapshot store); it
	// is exposed as emserve_startup_* gauges.
	Startup *StartupInfo

	// Router, when non-nil, scores traffic through the resilient routing
	// cascade (internal/route) instead of calling the matcher directly:
	// per-tier retries, circuit breakers, hedging, and per-attempt Table-6
	// cost accounting. Routed serving is batch-invariant by construction
	// (every pair is routed independently), so Router forces
	// SemBatchInvariant, and the server's own per-pair pricing is disabled
	// — the router already charges every attempt, including failed ones.
	// Admission shed signals feed the router's entry-tier breaker.
	Router *route.Router

	// SLOSpecs, when non-empty, builds the burn-rate SLO engine
	// (internal/slo) over the server's own metrics: latency-quantile
	// ceilings bind the request latency histogram, shed/error ratios the
	// admission counters, cost budgets the priced (and routed) bill.
	// F1 floors are rejected — serving traffic is unlabeled.
	SLOSpecs []slo.Spec
	// SLOClock drives the engine; nil means the real clock. Tests inject
	// a slo.VirtualClock (route.VirtualClock satisfies it too).
	SLOClock slo.Clock
	// SLOResolution overrides the engine's sample spacing; <=0 derives
	// it from the tightest short window (five samples per window,
	// clamped to [50ms, 1s]).
	SLOResolution time.Duration
	// SLOTick is the background evaluation interval: 0 ticks at the
	// engine resolution, <0 starts no loop (tests call TickSLO under a
	// virtual clock), >0 overrides.
	SLOTick time.Duration
	// BreachShedPermille is the admission-guard strength: while any
	// objective is in BREACH, this fraction (per mille) of new
	// cache-miss requests is shed with 429 before queueing. 0 disables
	// the guard — the engine then only observes.
	BreachShedPermille int
	// OnSLOTransition, when non-nil, is called on every objective state
	// change, after the server's own breach handling.
	OnSLOTransition func(slo.Transition)

	// Flight, when non-nil, receives one compact record per request
	// (internal/flight): cache hits, sheds, expiries and scored requests
	// alike, written lock-free from the dispatcher.
	Flight *flight.Recorder
	// FlightDump, when non-nil, snapshots Flight's ring to JSONL on SLO
	// breach transitions and on p99-straggler requests.
	FlightDump *flight.Dumper
}

// StartupInfo records the cold-train vs warm-restore outcome of matcher
// startup, surfaced on /metrics so operators can see what a restart
// would cost.
type StartupInfo struct {
	// Warm reports the matcher was restored from a snapshot instead of
	// trained.
	Warm bool
	// TrainSeconds is the training wall time (zero on warm starts).
	TrainSeconds float64
	// RestoreSeconds is the snapshot load+restore wall time (zero on
	// cold starts).
	RestoreSeconds float64
	// SnapshotHash is the content address the matcher was restored from
	// or saved to (empty when no store is in play).
	SnapshotHash string
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.MaxPairsPerRequest <= 0 {
		c.MaxPairsPerRequest = 256
	}
	c.Workers = par.Workers(c.Workers)
	return c
}

// Server is one loaded matcher behind the serving pipeline. Create with
// New, serve HTTP via Handler, stop with Shutdown.
type Server struct {
	cfg       Config
	matcher   matchers.Matcher
	semantics Semantics
	router    *route.Router

	// pricing, when non-zero, prices every scored pair at rate dollars per
	// 1K input tokens (prompted matchers only).
	pricingModel string
	pricingRate  float64

	cache    *PredCache
	sercache *record.SerializeCache
	profiles *textsim.ProfileCache
	opts     record.SerializeOptions

	queue chan *request
	// admit guards the draining flag against the queue close in Shutdown:
	// senders hold it shared, Shutdown takes it exclusively to flip
	// draining, after which no sender can be mid-send.
	admit    sync.RWMutex
	draining bool
	workers  sync.WaitGroup

	reg     *obs.Registry
	metrics metrics
	started time.Time

	// SLO machinery (nil/zero when Config.SLOSpecs is empty): the
	// burn-rate engine, the stop signal of its tick loop, and the
	// admission-guard strength in effect (permille of cache-miss
	// requests shed while breached; 0 when healthy).
	sloEngine *slo.Engine
	sloStop   chan struct{}
	preShed   atomic.Int64
	preShedN  atomic.Uint64

	// flight recorder + breach/straggler evidence dumper (nil disabled).
	flight *flight.Recorder
	fdump  *flight.Dumper
}

// New wraps a trained matcher in the serving pipeline and starts its
// worker pool. The matcher must be ready to predict (fine-tuned matchers
// train before serving, exactly like cmd/emmatch) and its Predict must be
// safe for concurrent use after training — true of every study matcher,
// whose post-training state is read-only over the concurrency-safe shared
// caches.
func New(m matchers.Matcher, cfg Config) (*Server, error) {
	if m == nil {
		return nil, fmt.Errorf("serve: nil matcher")
	}
	cfg = cfg.withDefaults()
	sem := SemanticsFor(cfg.MatcherName)
	if cfg.Semantics != nil {
		sem = *cfg.Semantics
	}
	if cfg.Router != nil {
		// Routed pairs are decided independently, so the grouping provably
		// cannot change decisions: batch-invariant by construction.
		sem = SemBatchInvariant
	}
	s := &Server{
		cfg:       cfg,
		matcher:   m,
		semantics: sem,
		router:    cfg.Router,
		cache:     NewPredCache(cfg.CacheCapacity, cfg.CacheShards),
		sercache:  record.NewSerializeCache(),
		profiles:  textsim.Shared(),
		queue:     make(chan *request, cfg.QueueDepth),
		started:   time.Now(),
	}
	// Canonical serialization for serving: schema order, default
	// separator, memoised through the shared serialize cache so repeated
	// records never re-serialize.
	s.opts = record.SerializeOptions{Separator: record.DefaultSeparator, Cache: s.sercache}
	// Routed servers skip their own pricing: the router charges every
	// attempt (retries and hedges included) through cost.RateForMatcher,
	// and pricing the delivered pair here would double-bill it.
	if model := matchers.PricingModel(cfg.MatcherName); model != "" && s.router == nil {
		rate, err := cost.ServingRate(model)
		if err != nil {
			return nil, fmt.Errorf("serve: pricing %s: %w", cfg.MatcherName, err)
		}
		s.pricingModel, s.pricingRate = model, rate
	}
	if cfg.Registry != nil {
		s.reg = cfg.Registry
	} else {
		s.reg = obs.NewRegistry(obs.Label{Key: "matcher", Value: m.Name()})
	}
	s.metrics.init(s.reg, cfg.MaxBatch)
	if cfg.Startup != nil {
		startup := *cfg.Startup // copy: the gauges outlive the caller's struct
		s.reg.GaugeFunc("emserve_startup_warm", "1 when the matcher was restored from a snapshot, 0 when trained", func() float64 {
			if startup.Warm {
				return 1
			}
			return 0
		})
		s.reg.GaugeFunc("emserve_startup_train_seconds", "matcher training wall time at startup", func() float64 {
			return startup.TrainSeconds
		})
		s.reg.GaugeFunc("emserve_startup_restore_seconds", "snapshot restore wall time at startup", func() float64 {
			return startup.RestoreSeconds
		})
	}
	// Read-at-exposition metrics: queue depth and cache effectiveness come
	// straight from their owners, priced dollars derive from the token
	// counter so the exposed value can never drift from /stats.
	s.reg.GaugeFunc("emserve_queue_depth", "requests waiting for a worker", func() float64 {
		return float64(s.QueueDepth())
	})
	s.reg.GaugeFunc("emserve_cache_len", "prediction-cache entries", func() float64 {
		return float64(s.cache.Len())
	})
	s.reg.CounterFunc("emserve_cache_hits_total", "prediction-cache hits", func() float64 {
		hits, _ := s.cache.Stats()
		return float64(hits)
	})
	s.reg.CounterFunc("emserve_cache_misses_total", "prediction-cache misses", func() float64 {
		_, misses := s.cache.Stats()
		return float64(misses)
	})
	s.reg.CounterFunc("emserve_cost_usd_total", "Table-6 dollars across scored pairs", func() float64 {
		return cost.Dollars(s.metrics.scoredTokens.Load(), s.pricingRate)
	})
	if s.router != nil {
		// The router's per-tier attempt/retry/breaker metrics live in its
		// own registry (pass the same Registry to route.New and serve.New
		// to expose everything on one /metrics page); the server adds only
		// the aggregate bill, mirroring emserve_cost_usd_total.
		s.reg.CounterFunc("emserve_routed_cost_usd_total", "Table-6 dollars across all routed attempts, failures and hedges included", s.router.TotalCostUSD)
		s.reg.CounterFunc("emserve_routed_tokens_total", "billed input tokens across all routed attempts", func() float64 {
			return float64(s.router.TotalTokens())
		})
	}
	obs.PublishExpvar("emserve", s.reg)
	s.flight = cfg.Flight
	s.fdump = cfg.FlightDump
	if err := s.initSLO(); err != nil {
		return nil, err
	}
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	if s.sloEngine != nil && cfg.SLOTick >= 0 {
		tick := cfg.SLOTick
		if tick <= 0 {
			tick = s.sloEngine.Resolution()
		}
		s.sloStop = make(chan struct{})
		s.workers.Add(1)
		go s.sloLoop(tick)
	}
	return s, nil
}

// Matcher returns the served matcher.
func (s *Server) Matcher() matchers.Matcher { return s.matcher }

// Semantics returns the serving semantics in effect.
func (s *Server) Semantics() Semantics { return s.semantics }

// Cache returns the prediction cache (for tests and the load generator).
func (s *Server) Cache() *PredCache { return s.cache }

// Registry returns the server's metrics registry — the backing store of
// /metrics, /debug/vars and /stats.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Tracer returns the span tracer configured at construction, or nil.
func (s *Server) Tracer() *obs.Tracer { return s.cfg.Tracer }

// Shutdown drains the admission queue and in-flight batches, then stops
// the worker pool. New requests are rejected with 503 the moment it is
// called; requests already admitted complete normally. Safe to call once.
func (s *Server) Shutdown() {
	s.admit.Lock()
	already := s.draining
	s.draining = true
	s.admit.Unlock()
	if already {
		return
	}
	// No sender can be mid-send now: enqueue() checks draining under the
	// shared lock and we just held it exclusively.
	close(s.queue)
	if s.sloStop != nil {
		close(s.sloStop)
	}
	s.workers.Wait()
}

// keySep separates the two serialized records inside a canonical pair key.
// It is unprintable, so it cannot collide with serialized record content.
const keySep = '\x1f'

// keyBufPool recycles the scratch buffers pair keys are built in, so the
// cache-probe path allocates nothing: keys only become durable strings on
// a miss, when they must outlive the probe to feed the cache Put.
var keyBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 256)
	return &b
}}

// pairKey returns the canonical cache key of a pair: both serialized
// records joined with an unprintable separator. Serialization goes through
// the shared serialize cache, so computing the key of a hot pair is two
// map hits.
func (s *Server) pairKey(p record.Pair) string {
	return record.SerializeRecord(p.Left, s.opts) + string(keySep) + record.SerializeRecord(p.Right, s.opts)
}

// appendPairKey appends p's canonical cache key to dst and returns the
// extended buffer — the same bytes pairKey produces, built without the
// string concatenation. The cache probe loops use it with a pooled buffer
// so key construction is allocation-free.
func (s *Server) appendPairKey(dst []byte, p record.Pair) []byte {
	return AppendPairKey(dst, p, s.opts)
}

// AppendPairKey appends p's canonical serving cache key to dst: both
// records serialized under opts, joined with the unprintable key
// separator — byte-identical to the server's own cache keys and to
// appendWireKey on the binary path. The fleet router partitions its
// consistent-hash keyspace on exactly these bytes, so a pair owns the
// same ring position no matter which protocol or process computed it.
func AppendPairKey(dst []byte, p record.Pair, opts record.SerializeOptions) []byte {
	dst = append(dst, record.SerializeRecord(p.Left, opts)...)
	dst = append(dst, keySep)
	dst = append(dst, record.SerializeRecord(p.Right, opts)...)
	return dst
}

// CanonicalKeyOptions returns the serialization options serving keys are
// built under (schema order, default separator) memoised through cache;
// nil means uncached. External key builders (the fleet router) must use
// this so their keys stay byte-identical to the replicas' cache keys.
func CanonicalKeyOptions(cache *record.SerializeCache) record.SerializeOptions {
	return record.SerializeOptions{Separator: record.DefaultSeparator, Cache: cache}
}

// cacheable reports whether served decisions flow through the prediction
// cache (request-batch matchers bypass it; capacity 0 disables it).
func (s *Server) cacheable() bool {
	return s.semantics != SemRequestBatch && s.cfg.CacheCapacity > 0
}

// pairCost returns the dollar cost of scoring one pair, and the token
// count it contributes (zero for unpriced matchers).
func (s *Server) pairCost(p record.Pair) (dollars float64, tokens int) {
	if s.pricingRate == 0 {
		return 0, 0
	}
	t := cost.PairTokens(p, s.opts)
	return cost.Dollars(int64(t), s.pricingRate), t
}
