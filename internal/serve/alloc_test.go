//go:build !race

// Allocation regression tests for the serving hot path. They are compiled
// out under -race: the race detector instruments allocations and makes
// sync.Pool drop puts at random, so AllocsPerRun is meaningless there. The
// non-race `go test` leg and the bench-json-wire gate keep them honest.

package serve

import (
	"context"
	"net/http"
	"testing"

	"repro/internal/record"
	"repro/internal/wire"
)

// zeroAllocs asserts f settles to zero allocations per run. A GC can
// empty a sync.Pool mid-measurement, so one noisy sample is retried
// before failing.
func zeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	for attempt := 0; attempt < 3; attempt++ {
		if allocs := testing.AllocsPerRun(200, f); allocs == 0 {
			return
		} else if attempt == 2 {
			t.Fatalf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}

// TestWireCacheHitZeroAlloc pins the tentpole's allocation target: a fully
// cached binary request — frame parse, cache probe, response encode —
// allocates nothing, for single pairs and for batches.
func TestWireCacheHitZeroAlloc(t *testing.T) {
	pairs := benchmarkPairs(t, "ABT", 64)
	srv, err := New(trained(t, "stringsim"), Config{
		MatcherName: "stringsim", CacheCapacity: 1 << 12, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	if _, err := srv.Submit(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}

	single := wire.AppendRequest(nil, pairs[:1], 0)
	batch := wire.AppendRequest(nil, pairs, 0)
	dst := make([]byte, 0, 4096)
	ctx := context.Background()

	// Warm the pools and sanity-check the fast path actually hits.
	status, out := srv.ServeWire(ctx, batch, dst[:0])
	if status != http.StatusOK {
		t.Fatalf("warmup status %d", status)
	}
	resp := decodeWireResp(t, out)
	for i := range resp.Cached {
		if !resp.Cached[i] {
			t.Fatalf("warmup pair %d missed the cache", i)
		}
	}

	zeroAllocs(t, "wire single-pair cache hit", func() {
		if st, _ := srv.ServeWire(ctx, single, dst[:0]); st != http.StatusOK {
			t.Fatalf("status %d", st)
		}
	})
	zeroAllocs(t, "wire batch cache hit", func() {
		if st, _ := srv.ServeWire(ctx, batch, dst[:0]); st != http.StatusOK {
			t.Fatalf("status %d", st)
		}
	})
}

// TestCacheKeyProbeZeroAlloc pins the satellite: building a canonical pair
// key in pooled scratch and probing the cache by bytes allocates nothing,
// hit or miss.
func TestCacheKeyProbeZeroAlloc(t *testing.T) {
	pairs := benchmarkPairs(t, "ABT", 8)
	srv, err := New(trained(t, "stringsim"), Config{
		MatcherName: "stringsim", CacheCapacity: 1 << 12, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	if _, err := srv.Submit(context.Background(), pairs[:4]); err != nil {
		t.Fatal(err)
	}

	probe := func(p record.Pair) {
		bufp := keyBufPool.Get().(*[]byte)
		buf := srv.appendPairKey((*bufp)[:0], p)
		_, _ = srv.cache.GetBytes(buf)
		*bufp = buf
		keyBufPool.Put(bufp)
	}
	probe(pairs[0]) // warm the serialize cache and key pool
	probe(pairs[5])

	zeroAllocs(t, "cache-hit key probe", func() { probe(pairs[0]) })
	zeroAllocs(t, "cache-miss key probe", func() { probe(pairs[5]) })
}

// TestWireErrorPathZeroAlloc extends the zero-allocation envelope to
// protocol rejections with sentinel errors (bad magic, truncation):
// junk traffic answered from static errors cannot pressure the collector.
// Errors that format a dynamic message (bad version/type) still allocate
// for the message and are deliberately out of scope.
func TestWireErrorPathZeroAlloc(t *testing.T) {
	srv, err := New(&stubMatcher{}, Config{MatcherName: "stub", CacheCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	dst := make([]byte, 0, 512)
	badMagic := []byte{'X', 'X', wire.Version, wire.TReq, 0x01, 0x00}
	srv.ServeWire(context.Background(), badMagic, dst[:0])
	zeroAllocs(t, "bad-magic error frame", func() {
		if st, _ := srv.ServeWire(context.Background(), badMagic, dst[:0]); st != http.StatusBadRequest {
			t.Fatalf("status %d", st)
		}
	})
}
