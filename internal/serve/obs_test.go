package serve

import (
	"context"
	"io"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/record"
)

func TestMetricsEndpointPrometheusText(t *testing.T) {
	srv, err := New(trained(t, "stringsim"), Config{
		MatcherName: "stringsim", Workers: 2, CacheCapacity: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	pairs := benchmarkPairs(t, "ABT", 8)
	if _, err := srv.Submit(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	// Same pairs again: hits the prediction cache.
	if _, err := srv.Submit(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	out := string(body)
	for _, want := range []string{
		`emserve_requests_total{matcher="StringSim"} 2`,
		`emserve_shed_queue_full_total{matcher="StringSim"} 0`,
		`emserve_pairs_scored_total{matcher="StringSim"} 8`,
		`emserve_pairs_cached_total{matcher="StringSim"} 8`,
		`emserve_cache_hits_total{matcher="StringSim"} 8`,
		`emserve_tokens_total{matcher="StringSim"} 0`,
		`emserve_cost_usd_total{matcher="StringSim"} 0`,
		`# TYPE emserve_batch_pairs histogram`,
		`# TYPE emserve_latency_us histogram`,
		`emserve_queue_depth{matcher="StringSim"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}

	// /debug/vars carries the same registry under the "emserve" key.
	resp, err = ts.Client().Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	vars, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(vars), `"emserve"`) || !strings.Contains(string(vars), `emserve_requests_total`) {
		t.Fatalf("/debug/vars missing emserve registry:\n%.500s", vars)
	}
}

func TestTracedServingBitIdenticalAndNested(t *testing.T) {
	pairs := benchmarkPairs(t, "ABT", 12)

	plain, err := New(trained(t, "stringsim"), Config{MatcherName: "stringsim", Workers: 2, CacheCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	base, err := plain.Submit(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	plain.Shutdown()

	tr := obs.NewTracer()
	traced, err := New(trained(t, "stringsim"), Config{
		MatcherName: "stringsim", Workers: 2, CacheCapacity: 64, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := traced.Submit(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	traced.Shutdown()

	if !reflect.DeepEqual(base.Preds, got.Preds) {
		t.Fatalf("traced serving diverged:\n%v\n%v", base.Preds, got.Preds)
	}

	recs := tr.Records()
	if err := obs.CheckNesting(recs); err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	parents := map[uint64]obs.SpanRecord{}
	for _, r := range recs {
		byName[r.Name]++
		parents[r.ID] = r
	}
	for _, name := range []string{"request", "queue", "batch", "score"} {
		if byName[name] == 0 {
			t.Fatalf("no %q span recorded (got %v)", name, byName)
		}
	}
	for _, r := range recs {
		switch r.Name {
		case "queue":
			if parents[r.Parent].Name != "request" {
				t.Fatalf("queue span parented under %q", parents[r.Parent].Name)
			}
		case "score":
			if parents[r.Parent].Name != "batch" {
				t.Fatalf("score span parented under %q", parents[r.Parent].Name)
			}
		case "request":
			if r.Str("outcome") != "ok" {
				t.Fatalf("request outcome = %q", r.Str("outcome"))
			}
		}
	}
	// StringSim's stage spans land under score.
	if byName["serialize"] == 0 || byName["classify"] == 0 {
		t.Fatalf("matcher stage spans missing under score: %v", byName)
	}
}

func TestShedRequestSpanOutcome(t *testing.T) {
	tr := obs.NewTracer()
	srv, err := New(trained(t, "stringsim"), Config{MatcherName: "stringsim", Workers: 1, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()
	if _, err := srv.Submit(context.Background(), []record.Pair{
		{Left: record.Record{Values: []string{"a"}}, Right: record.Record{Values: []string{"a"}}},
	}); err == nil {
		t.Fatal("draining server must reject")
	}
	var found bool
	for _, r := range tr.Records() {
		if r.Name == "request" && r.Str("outcome") == "shed" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no shed request span: %+v", tr.Records())
	}
	if err := obs.CheckNesting(tr.Records()); err != nil {
		t.Fatal(err)
	}
}
