package serve

import (
	"context"
	"net/http"
	"testing"

	"repro/internal/record"
	"repro/internal/wire"
)

// Serving benchmarks for BENCH_pr3.json (see the bench-json-serve Make
// target): single-pair latency, batched throughput and the cache-hit fast
// path, for one cheap matcher (stringsim) and one expensive prompted
// matcher (gpt-4). All go through Submit — the same pipeline the HTTP
// handler drives — so they measure dispatch, scoring, caching and cost
// accounting, without the HTTP stack.

func benchServer(b *testing.B, matcher string, cacheCap int) (*Server, []record.Pair) {
	b.Helper()
	srv, err := New(trained(b, matcher), Config{
		MatcherName:   matcher,
		CacheCapacity: cacheCap,
		Workers:       2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Shutdown)
	return srv, benchmarkPairs(b, "ABT", 256)
}

func benchSingle(b *testing.B, matcher string) {
	srv, pairs := benchServer(b, matcher, 0)
	one := make([]record.Pair, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		one[0] = pairs[i%len(pairs)]
		if _, err := srv.Submit(context.Background(), one); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBatched(b *testing.B, matcher string) {
	srv, pairs := benchServer(b, matcher, 0)
	const per = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := (i * per) % len(pairs)
		end := at + per
		if end > len(pairs) {
			end = len(pairs)
		}
		if _, err := srv.Submit(context.Background(), pairs[at:end]); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCacheHit(b *testing.B, matcher string) {
	srv, pairs := benchServer(b, matcher, 1<<12)
	// Warm the cache with the full replay set.
	if _, err := srv.Submit(context.Background(), pairs); err != nil {
		b.Fatal(err)
	}
	one := make([]record.Pair, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		one[0] = pairs[i%len(pairs)]
		res, err := srv.Submit(context.Background(), one)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Cached[0] {
			b.Fatal("expected a cache hit")
		}
	}
}

// benchWireCacheHit drives ServeWire with a pre-encoded frame against a
// warmed cache: the zero-copy binary hot path end to end (frame parse,
// pooled key probe, response encode), minus the HTTP transport. These are
// the benchmarks the bench-json-wire gate requires to report 0 allocs/op.
func benchWireCacheHit(b *testing.B, matcher string, per int) {
	srv, pairs := benchServer(b, matcher, 1<<12)
	if _, err := srv.Submit(context.Background(), pairs); err != nil {
		b.Fatal(err)
	}
	frame := wire.AppendRequest(nil, pairs[:per], 0)
	dst := make([]byte, 0, 4096)
	ctx := context.Background()
	// Warm the wire scratch pools before measuring.
	if st, _ := srv.ServeWire(ctx, frame, dst[:0]); st != http.StatusOK {
		b.Fatalf("warmup status %d", st)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st, _ := srv.ServeWire(ctx, frame, dst[:0]); st != http.StatusOK {
			b.Fatalf("status %d", st)
		}
	}
}

// benchWireMiss measures the binary path through scoring (cache disabled):
// decode, materialise, coalesce, batch kernel, encode.
func benchWireMiss(b *testing.B, matcher string, per int) {
	srv, pairs := benchServer(b, matcher, 0)
	dst := make([]byte, 0, 4096)
	ctx := context.Background()
	frames := make([][]byte, 0, len(pairs)/per)
	for at := 0; at+per <= len(pairs); at += per {
		frames = append(frames, wire.AppendRequest(nil, pairs[at:at+per], 0))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st, _ := srv.ServeWire(ctx, frames[i%len(frames)], dst[:0]); st != http.StatusOK {
			b.Fatalf("status %d", st)
		}
	}
}

func BenchmarkServeSinglePairStringSim(b *testing.B) { benchSingle(b, "stringsim") }
func BenchmarkServeSinglePairGPT4(b *testing.B)      { benchSingle(b, "gpt-4") }
func BenchmarkServeBatched64StringSim(b *testing.B)  { benchBatched(b, "stringsim") }
func BenchmarkServeBatched64GPT4(b *testing.B)       { benchBatched(b, "gpt-4") }
func BenchmarkServeCacheHitStringSim(b *testing.B)   { benchCacheHit(b, "stringsim") }
func BenchmarkServeCacheHitGPT4(b *testing.B)        { benchCacheHit(b, "gpt-4") }

func BenchmarkWireCacheHitStringSim(b *testing.B)        { benchWireCacheHit(b, "stringsim", 1) }
func BenchmarkWireCacheHitBatch64StringSim(b *testing.B) { benchWireCacheHit(b, "stringsim", 64) }
func BenchmarkWireMissSingleStringSim(b *testing.B)      { benchWireMiss(b, "stringsim", 1) }
func BenchmarkWireMissBatch64StringSim(b *testing.B)     { benchWireMiss(b, "stringsim", 64) }
