package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/matchers"
	"repro/internal/record"
	"repro/internal/wire"
)

// The load generator replays benchmark pairs against a running service at
// a target rate and reports what the paper's cost analysis can only
// estimate offline: sustained throughput, tail latency, shed rate, cache
// effectiveness and dollar cost under real concurrent traffic. Its
// headline mode compares a single-request closed-loop baseline (no
// batching, no cache) against the full serving pipeline, which is the
// speedup the micro-batching dispatcher and prediction cache exist to buy.

// LoadGenConfig parameterises one load-generation run.
type LoadGenConfig struct {
	// QPS is the target request arrival rate; <=0 runs closed-loop at
	// maximum throughput.
	QPS float64
	// Duration bounds the run; defaults to 5s.
	Duration time.Duration
	// Concurrency is the number of in-flight client workers; <=0
	// defaults to 8.
	Concurrency int
	// PairsPerRequest is the request batch size; <=0 defaults to 1
	// (single-pair traffic).
	PairsPerRequest int
	// DeadlineMs is the per-request deadline forwarded to the service;
	// zero sends none.
	DeadlineMs int
	// Protocol selects the request encoding: "json" (default) or
	// "binary" (the internal/wire framed protocol).
	Protocol string
}

func (c LoadGenConfig) withDefaults() LoadGenConfig {
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.PairsPerRequest <= 0 {
		c.PairsPerRequest = 1
	}
	if c.Protocol == "" {
		c.Protocol = ProtoJSON
	}
	return c
}

// Protocol names accepted by LoadGenConfig.Protocol and emserve -proto.
const (
	ProtoJSON   = "json"
	ProtoBinary = "binary"
)

// LoadReport is the outcome of one load-generation run.
type LoadReport struct {
	Requests   int64   `json:"requests"`
	OK         int64   `json:"ok"`
	Rejected   int64   `json:"rejected"`       // 429/503 responses
	Errors     int64   `json:"errors"`         // transport or 5xx failures
	ClientSkip int64   `json:"client_skipped"` // open-loop ticks with no free worker
	Pairs      int64   `json:"pairs"`
	Elapsed    float64 `json:"elapsed_sec"`
	ReqPerSec  float64 `json:"req_per_sec"`
	PairPerSec float64 `json:"pairs_per_sec"`
	P50Ms      float64 `json:"latency_p50_ms"`
	P95Ms      float64 `json:"latency_p95_ms"`
	P99Ms      float64 `json:"latency_p99_ms"`
	CostUSD    float64 `json:"cost_usd"`
}

// GenerateLoad replays pairs (cycling) as /match requests against baseURL.
func GenerateLoad(baseURL string, pairs []record.Pair, cfg LoadGenConfig) (LoadReport, error) {
	cfg = cfg.withDefaults()
	if len(pairs) == 0 {
		return LoadReport{}, fmt.Errorf("loadgen: no pairs to replay")
	}
	// Pre-marshal the request bodies once per distinct chunk: the
	// generator should spend its cycles on traffic, not encoding.
	var bodies [][]byte
	var post func(client *http.Client, baseURL string, body []byte) (status, npairs int, costUSD float64, err error)
	var err error
	switch cfg.Protocol {
	case ProtoJSON:
		bodies, err = marshalChunks(pairs, cfg.PairsPerRequest, cfg.DeadlineMs)
		post = postMatch
	case ProtoBinary:
		bodies = wireChunks(pairs, cfg.PairsPerRequest, cfg.DeadlineMs)
		post = postMatchWire
	default:
		return LoadReport{}, fmt.Errorf("loadgen: unknown protocol %q", cfg.Protocol)
	}
	if err != nil {
		return LoadReport{}, err
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Concurrency * 2,
		MaxIdleConnsPerHost: cfg.Concurrency * 2,
	}}
	var rep LoadReport
	var costMicro atomic.Int64 // micro-dollars, summed atomically
	var mu sync.Mutex
	var lats []time.Duration

	jobs := make(chan int, cfg.Concurrency)
	var wg sync.WaitGroup
	wg.Add(cfg.Concurrency)
	for w := 0; w < cfg.Concurrency; w++ {
		go func() {
			defer wg.Done()
			for idx := range jobs {
				body := bodies[idx%len(bodies)]
				t0 := time.Now()
				status, npairs, costUSD, err := post(client, baseURL, body)
				lat := time.Since(t0)
				switch {
				case err != nil:
					atomic.AddInt64(&rep.Errors, 1)
				case status == http.StatusOK:
					atomic.AddInt64(&rep.OK, 1)
					atomic.AddInt64(&rep.Pairs, int64(npairs))
					costMicro.Add(int64(costUSD * 1e6))
					mu.Lock()
					lats = append(lats, lat)
					mu.Unlock()
				case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
					atomic.AddInt64(&rep.Rejected, 1)
				default:
					atomic.AddInt64(&rep.Errors, 1)
				}
			}
		}()
	}

	// Drive arrivals: paced when QPS > 0, closed-loop otherwise.
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	n := 0
	for time.Now().Before(deadline) {
		if cfg.QPS > 0 {
			next := start.Add(time.Duration(float64(n) / cfg.QPS * float64(time.Second)))
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			select {
			case jobs <- n:
				rep.Requests++
			default:
				// All workers busy: an open-loop generator never blocks,
				// it records the missed tick and moves on.
				rep.ClientSkip++
			}
		} else {
			jobs <- n
			rep.Requests++
		}
		n++
	}
	close(jobs)
	wg.Wait()
	rep.Elapsed = time.Since(start).Seconds()
	rep.CostUSD = float64(costMicro.Load()) / 1e6
	if rep.Elapsed > 0 {
		rep.ReqPerSec = float64(rep.OK) / rep.Elapsed
		rep.PairPerSec = float64(rep.Pairs) / rep.Elapsed
	}
	rep.P50Ms, rep.P95Ms, rep.P99Ms = latencyQuantiles(lats)
	return rep, nil
}

// marshalChunks pre-encodes the replay set as /match bodies of the given
// batch size.
func marshalChunks(pairs []record.Pair, per, deadlineMs int) ([][]byte, error) {
	var bodies [][]byte
	for at := 0; at < len(pairs); at += per {
		end := at + per
		if end > len(pairs) {
			end = len(pairs)
		}
		req := MatchRequest{DeadlineMs: deadlineMs}
		for _, p := range pairs[at:end] {
			req.Pairs = append(req.Pairs, PairJSON{Left: p.Left.Values, Right: p.Right.Values})
		}
		b, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		bodies = append(bodies, b)
	}
	return bodies, nil
}

// wireChunks pre-encodes the replay set as binary request frames of the
// given batch size.
func wireChunks(pairs []record.Pair, per, deadlineMs int) [][]byte {
	var bodies [][]byte
	for at := 0; at < len(pairs); at += per {
		end := at + per
		if end > len(pairs) {
			end = len(pairs)
		}
		bodies = append(bodies, wire.AppendRequest(nil, pairs[at:end], deadlineMs))
	}
	return bodies
}

func postMatch(client *http.Client, baseURL string, body []byte) (int, int, float64, error) {
	resp, err := client.Post(baseURL+"/match", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, 0, 0, nil
	}
	var mr MatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return resp.StatusCode, 0, 0, err
	}
	return resp.StatusCode, len(mr.Predictions), mr.CostUSD, nil
}

func postMatchWire(client *http.Client, baseURL string, body []byte) (int, int, float64, error) {
	resp, err := client.Post(baseURL+"/match", wire.ContentType, bytes.NewReader(body))
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, 0, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, 0, 0, nil
	}
	typ, payload, err := wire.ParseFrame(data)
	if err != nil {
		return resp.StatusCode, 0, 0, fmt.Errorf("loadgen: bad response frame: %w", err)
	}
	if typ != wire.TResp {
		return resp.StatusCode, 0, 0, fmt.Errorf("loadgen: unexpected frame type %d", typ)
	}
	var wr wire.Response
	if err := wr.Decode(payload); err != nil {
		return resp.StatusCode, 0, 0, err
	}
	return resp.StatusCode, len(wr.Preds), wr.CostUSD, nil
}

func latencyQuantiles(lats []time.Duration) (p50, p95, p99 float64) {
	if len(lats) == 0 {
		return 0, 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(lats)-1))
		return float64(lats[i].Microseconds()) / 1000
	}
	return at(0.50), at(0.95), at(0.99)
}

// ServingComparison is the report of CompareServing: the same matcher and
// replay set behind a bare single-request pipeline versus the full serving
// pipeline.
type ServingComparison struct {
	Matcher  string     `json:"matcher"`
	Protocol string     `json:"protocol"`
	Pairs    int        `json:"replay_pairs"`
	Baseline LoadReport `json:"baseline"`
	Served   LoadReport `json:"served"`
	// Speedup is served pairs/sec over baseline pairs/sec — the factor
	// micro-batching plus the prediction cache buy on this traffic.
	Speedup      float64 `json:"speedup"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	MeanBatch    float64 `json:"mean_batch"`
}

// CompareServing measures the serving pipeline's win on one matcher: a
// sequential single-request baseline with batching and caching disabled,
// then the full pipeline (micro-batched requests, prediction cache) under
// concurrent load, both over real HTTP on loopback listeners.
func CompareServing(m matchers.Matcher, name string, pairs []record.Pair, cfg LoadGenConfig) (*ServingComparison, error) {
	cfg = cfg.withDefaults()

	baseline, stop, err := listenServer(m, Config{
		MatcherName: name, MaxBatch: 1, CacheCapacity: 0, Workers: 1,
	})
	if err != nil {
		return nil, err
	}
	baseCfg := cfg
	baseCfg.QPS = 0
	baseCfg.Concurrency = 1
	baseCfg.PairsPerRequest = 1
	baseRep, err := GenerateLoad(baseline, pairs, baseCfg)
	stop()
	if err != nil {
		return nil, err
	}

	srv, err := New(m, Config{MatcherName: name, CacheCapacity: 1 << 16})
	if err != nil {
		return nil, err
	}
	url, stopHTTP, err := listen(srv)
	if err != nil {
		srv.Shutdown()
		return nil, err
	}
	servedRep, err := GenerateLoad(url, pairs, cfg)
	stopHTTP()
	stats := srv.Stats()
	srv.Shutdown()
	if err != nil {
		return nil, err
	}

	cmp := &ServingComparison{
		Matcher:      srv.Matcher().Name(),
		Protocol:     cfg.Protocol,
		Pairs:        len(pairs),
		Baseline:     baseRep,
		Served:       servedRep,
		CacheHitRate: stats.CacheHitRate,
		MeanBatch:    stats.MeanBatch,
	}
	if baseRep.PairPerSec > 0 {
		cmp.Speedup = servedRep.PairPerSec / baseRep.PairPerSec
	}
	return cmp, nil
}

// listenServer builds a Server for m under cfg and exposes it on a
// loopback listener; the returned stop tears down listener and server.
func listenServer(m matchers.Matcher, cfg Config) (url string, stop func(), err error) {
	srv, err := New(m, cfg)
	if err != nil {
		return "", nil, err
	}
	url, stopHTTP, err := listen(srv)
	if err != nil {
		srv.Shutdown()
		return "", nil, err
	}
	return url, func() {
		stopHTTP()
		srv.Shutdown()
	}, nil
}

// Listen serves srv.Handler() on an ephemeral loopback port and returns
// the base URL plus a stop that closes the listener (the server itself
// still needs Shutdown). cmd/emserve's loadgen modes use it to stand up
// the full HTTP surface — /match, /stats, /slo — without a fixed port.
func Listen(srv *Server) (url string, stop func(), err error) {
	return listen(srv)
}

// listen serves srv.Handler() on an ephemeral loopback port.
func listen(srv *Server) (url string, stop func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = hs.Close() }, nil
}

// RenderComparison formats a serving comparison as the human report the
// -loadgen CLI mode prints.
func RenderComparison(c *ServingComparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "serving comparison — %s over %d replay pairs (%s protocol)\n", c.Matcher, c.Pairs, c.Protocol)
	row := func(name string, r LoadReport) {
		fmt.Fprintf(&b, "  %-9s %9.0f pairs/s  %8.0f req/s  p50 %7.3fms  p95 %7.3fms  p99 %7.3fms  ok %d  shed %d",
			name, r.PairPerSec, r.ReqPerSec, r.P50Ms, r.P95Ms, r.P99Ms, r.OK, r.Rejected)
		if r.CostUSD > 0 {
			fmt.Fprintf(&b, "  cost $%.4f", r.CostUSD)
		}
		b.WriteString("\n")
	}
	row("baseline", c.Baseline)
	row("served", c.Served)
	fmt.Fprintf(&b, "  speedup %.1fx  (cache hit rate %.1f%%, mean batch %.1f pairs)\n",
		c.Speedup, 100*c.CacheHitRate, c.MeanBatch)
	return b.String()
}
