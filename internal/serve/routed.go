package serve

import (
	"context"
	"time"

	"repro/internal/flight"
	"repro/internal/matchers"
	"repro/internal/route"
)

// scoreRouted is the batch-invariant scoring path when a route.Router is
// configured: the coalesced micro-batch is flattened exactly like
// scoreCoalesced, but every pair travels the retry/breaker/cascade
// machinery instead of a direct matcher call, and each delivered
// decision carries the routed bill of every attempt it caused.
func (s *Server) scoreRouted(ctx context.Context, live []*request, npairs int) {
	sc := batchPool.Get().(*batchScratch)
	task := matchers.Task{Ctx: ctx, Opts: s.opts, Pairs: sc.pairs[:0]}
	for _, r := range live {
		task.Pairs = append(task.Pairs, r.pairs...)
	}
	t0 := time.Now()
	outcomes := s.router.RoutePairs(task, sc.outcomes[:0])
	predictUS := time.Since(t0).Microseconds()
	i := 0
	for _, r := range live {
		// The request-level flight record carries the deepest tier any of
		// its pairs escalated to; per-pair tiers live in the router's own
		// flight records.
		maxTier := int8(-1)
		for j := range r.pairs {
			o := &outcomes[i]
			s.deliver(r, j, o.Match)
			r.res.CostUSD += o.CostUSD
			r.res.Tokens += int(o.Tokens)
			if t := int8(o.Tier); t > maxTier {
				maxTier = t
			}
			i++
		}
		r.span.SetStr("outcome", "ok")
		s.flightScored(r, flight.CodeScored, maxTier, predictUS)
		r.finish()
	}
	sc.pairs = task.Pairs[:0]
	sc.outcomes = outcomes[:0]
	batchPool.Put(sc)
	s.metrics.pairsScored.Add(int64(npairs))
}

// Router returns the configured routing cascade, or nil when the server
// scores the matcher directly.
func (s *Server) Router() *route.Router { return s.router }
