package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/matchers"
	"repro/internal/record"
	"repro/internal/wire"
)

// postWire posts one binary frame to /match and returns the status and raw
// response body.
func postWire(t testing.TB, url string, frame []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/match", wire.ContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// decodeWireResp parses a TResp body.
func decodeWireResp(t testing.TB, data []byte) *wire.Response {
	t.Helper()
	typ, payload, err := wire.ParseFrame(data)
	if err != nil {
		t.Fatalf("response frame: %v", err)
	}
	if typ != wire.TResp {
		t.Fatalf("response frame type = %d, want TResp", typ)
	}
	var r wire.Response
	if err := r.Decode(payload); err != nil {
		t.Fatalf("response payload: %v", err)
	}
	return &r
}

// decodeWireErr parses a TErr body.
func decodeWireErr(t testing.TB, data []byte) *wire.Error {
	t.Helper()
	typ, payload, err := wire.ParseFrame(data)
	if err != nil {
		t.Fatalf("error frame: %v", err)
	}
	if typ != wire.TErr {
		t.Fatalf("error frame type = %d, want TErr", typ)
	}
	we, err := wire.DecodeError(payload)
	if err != nil {
		t.Fatalf("error payload: %v", err)
	}
	return we
}

// TestWireServedBitIdenticalToOffline pins the tentpole acceptance
// criterion for the binary protocol: decisions served over wire frames are
// bit-identical to offline Predict and to the JSON path, and a replay is
// answered from the cache.
func TestWireServedBitIdenticalToOffline(t *testing.T) {
	pairs := benchmarkPairs(t, "ABT", 120)
	m := trained(t, "stringsim")
	offline := m.Predict(matchers.Task{Pairs: pairs})

	srv, err := New(m, Config{MatcherName: "stringsim", CacheCapacity: 1 << 12, MaxBatch: 16, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	frame := wire.AppendRequest(nil, pairs, 0)
	status, body := postWire(t, hs.URL, frame)
	if status != http.StatusOK {
		t.Fatalf("wire batch: status %d", status)
	}
	resp := decodeWireResp(t, body)
	if len(resp.Preds) != len(pairs) {
		t.Fatalf("wire batch: %d preds, want %d", len(resp.Preds), len(pairs))
	}
	for i := range pairs {
		if resp.Preds[i] != offline[i] {
			t.Fatalf("wire pair %d: served %v, offline %v", i, resp.Preds[i], offline[i])
		}
	}

	// Replay over the wire: every decision now comes from the cache the
	// first pass populated, still bit-identical.
	status, body = postWire(t, hs.URL, frame)
	if status != http.StatusOK {
		t.Fatalf("wire replay: status %d", status)
	}
	replay := decodeWireResp(t, body)
	for i := range pairs {
		if replay.Preds[i] != offline[i] {
			t.Fatalf("wire replay pair %d: served %v, offline %v", i, replay.Preds[i], offline[i])
		}
		if !replay.Cached[i] {
			t.Fatalf("wire replay pair %d not cached", i)
		}
	}

	// A JSON client on the same server sees the same decisions — including
	// hits on cache entries the binary client populated.
	jstatus, jresp := postMatchJSON(t, hs.URL, MatchRequest{Pairs: toJSONPairs(pairs)})
	if jstatus != http.StatusOK {
		t.Fatalf("json after wire: status %d", jstatus)
	}
	for i := range pairs {
		if jresp.Predictions[i] != offline[i] {
			t.Fatalf("json pair %d: served %v, offline %v", i, jresp.Predictions[i], offline[i])
		}
		if !jresp.Cached[i] {
			t.Fatalf("json pair %d missed the cache the wire client warmed", i)
		}
	}
}

// TestMixedProtocolClients runs concurrent JSON and binary clients against
// one server and checks both get consistent decisions.
func TestMixedProtocolClients(t *testing.T) {
	pairs := benchmarkPairs(t, "ABT", 60)
	m := trained(t, "stringsim")
	offline := m.Predict(matchers.Task{Pairs: pairs})

	srv, err := New(m, Config{MatcherName: "stringsim", CacheCapacity: 1 << 12, MaxBatch: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	var wg sync.WaitGroup
	for i := range pairs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				frame := wire.AppendRequest(nil, pairs[i:i+1], 0)
				status, body := postWire(t, hs.URL, frame)
				if status != http.StatusOK {
					t.Errorf("wire %d: status %d", i, status)
					return
				}
				if got := decodeWireResp(t, body); got.Preds[0] != offline[i] {
					t.Errorf("wire %d: %v, offline %v", i, got.Preds[0], offline[i])
				}
			} else {
				status, r := postMatchJSON(t, hs.URL, MatchRequest{
					Left: pairs[i].Left.Values, Right: pairs[i].Right.Values,
				})
				if status != http.StatusOK {
					t.Errorf("json %d: status %d", i, status)
					return
				}
				if r.Predictions[0] != offline[i] {
					t.Errorf("json %d: %v, offline %v", i, r.Predictions[0], offline[i])
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestWireProtocolErrors covers the negotiation edge cases: malformed,
// truncated and oversized frames must come back as TErr frames whose code
// matches the HTTP status, with JSON clients unaffected.
func TestWireProtocolErrors(t *testing.T) {
	srv, err := New(&stubMatcher{}, Config{
		MatcherName: "stub", CacheCapacity: 16, MaxPairsPerRequest: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	onePair := []record.Pair{{
		Left:  record.Record{Values: []string{"a"}},
		Right: record.Record{Values: []string{"a"}},
	}}
	valid := wire.AppendRequest(nil, onePair, 0)

	oversizeHeader := []byte{'E', 'W', wire.Version, wire.TReq}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], wire.MaxPayload+1)
	oversizeHeader = append(oversizeHeader, lenBuf[:n]...)

	fivePairs := wire.AppendRequest(nil, []record.Pair{
		onePair[0], onePair[0], onePair[0], onePair[0], onePair[0],
	}, 0)

	respAsReq := func() []byte {
		// A TResp frame sent as a request: well-formed framing, wrong type.
		b := append([]byte(nil), valid...)
		b[3] = wire.TResp
		return b
	}()

	emptyReq := wire.AppendRequest(nil, nil, 0)

	cases := []struct {
		name       string
		frame      []byte
		wantStatus int
	}{
		{"garbage", []byte("not a frame at all"), http.StatusBadRequest},
		{"truncated", valid[:len(valid)-3], http.StatusBadRequest},
		{"trailing", append(append([]byte(nil), valid...), 0x00), http.StatusBadRequest},
		{"oversize declared", oversizeHeader, http.StatusRequestEntityTooLarge},
		{"too many pairs", fivePairs, http.StatusRequestEntityTooLarge},
		{"response frame as request", respAsReq, http.StatusBadRequest},
		{"no pairs", emptyReq, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := postWire(t, hs.URL, tc.frame)
			if status != tc.wantStatus {
				t.Fatalf("status = %d, want %d", status, tc.wantStatus)
			}
			we := decodeWireErr(t, body)
			if we.Code != tc.wantStatus {
				t.Fatalf("frame code = %d, want %d", we.Code, tc.wantStatus)
			}
			if we.Msg == "" {
				t.Fatal("error frame has empty message")
			}
		})
	}

	// A valid frame still works after all the malformed traffic, and a JSON
	// request on the same connection pool is untouched.
	status, body := postWire(t, hs.URL, valid)
	if status != http.StatusOK {
		t.Fatalf("valid frame after errors: status %d", status)
	}
	if got := decodeWireResp(t, body); len(got.Preds) != 1 || !got.Preds[0] {
		t.Fatalf("valid frame after errors: %+v", got)
	}
	jstatus, jresp := postMatchJSON(t, hs.URL, MatchRequest{Left: []string{"a"}, Right: []string{"a"}})
	if jstatus != http.StatusOK || len(jresp.Predictions) != 1 {
		t.Fatalf("json after errors: status %d, %+v", jstatus, jresp)
	}
}

// TestServeWireDrainingAnswers503 checks admission errors travel as TErr
// frames too.
func TestServeWireDrainingAnswers503(t *testing.T) {
	srv, err := New(&stubMatcher{}, Config{MatcherName: "stub", CacheCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()
	frame := wire.AppendRequest(nil, []record.Pair{{
		Left:  record.Record{Values: []string{"x"}},
		Right: record.Record{Values: []string{"y"}},
	}}, 0)
	status, out := srv.ServeWire(context.Background(), frame, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", status)
	}
	if we := decodeWireErr(t, out); we.Code != http.StatusServiceUnavailable {
		t.Fatalf("frame code = %d, want 503", we.Code)
	}
}

// TestWireKeysMatchJSONKeys pins the cross-protocol cache-key identity:
// the key built from frame views must be byte-identical to the one the
// JSON path builds from materialised records, or the two protocols would
// silently stop sharing cache entries.
func TestWireKeysMatchJSONKeys(t *testing.T) {
	srv, err := New(&stubMatcher{}, Config{MatcherName: "stub", CacheCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	pairs := benchmarkPairs(t, "ABT", 32)
	frame := wire.AppendRequest(nil, pairs, 0)
	_, payload, err := wire.ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	var req wire.Request
	if err := req.Decode(payload); err != nil {
		t.Fatal(err)
	}
	for i, v := range req.Pairs {
		got := string(appendWireKey(nil, v))
		want := srv.pairKey(pairs[i])
		if got != want {
			t.Fatalf("pair %d: wire key %q != json key %q", i, got, want)
		}
	}
}
