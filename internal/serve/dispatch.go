package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/flight"
	"repro/internal/matchers"
	"repro/internal/obs"
	"repro/internal/record"
	"repro/internal/route"
)

// Admission errors; the HTTP layer maps them onto status codes (429 for a
// full queue, 503 for draining, 413 for oversized requests). The shed
// signals wrap the typed backend errors, so the routing layer's
// backend.Retryable classification and the HTTP status mapping agree by
// construction: a full queue IS an overload, draining IS transient
// unavailability.
var (
	ErrQueueFull = fmt.Errorf("serve: admission queue full: %w", backend.ErrOverloaded)
	ErrDraining  = fmt.Errorf("serve: server draining: %w", backend.ErrUnavailable)
	ErrTooLarge  = errors.New("serve: request exceeds max pairs per request")
)

// MatchResult is the outcome of one admitted request.
type MatchResult struct {
	// Preds holds the match decision per input pair.
	Preds []bool
	// Cached marks which decisions came from the prediction cache.
	Cached []bool
	// CostUSD is the priced inference cost of the scored (non-cached)
	// pairs; zero for unpriced matchers and for pure cache hits.
	CostUSD float64
	// Tokens is the input-token count the scored pairs were priced at.
	Tokens int
}

// request is one admitted match request travelling through the queue: the
// cache-miss pairs, their canonical keys, their positions in the caller's
// result, and the completion signal the handler waits on.
type request struct {
	ctx      context.Context
	pairs    []record.Pair
	keys     []string // aligned with pairs; nil when results are uncacheable
	slots    []int    // position of each pair in res.Preds
	res      *MatchResult
	done     chan struct{}
	enqueued time.Time
	// pickup is when a worker drained the request from the queue; key is
	// the XOR-folded hash of the request's canonical pair keys (0 when
	// the flight recorder is off). Both exist for flight records only.
	pickup time.Time
	key    uint64

	// span covers the request's whole life (admission through scoring);
	// qspan is its "queue" child, ended when a worker picks the request
	// up. Both are nil when tracing is off. After a successful enqueue the
	// worker owns both (the channel send/receive orders the hand-off) —
	// Submit must not touch them again, even when it returns early on a
	// dead context, or an End here could race the worker's and break span
	// nesting.
	span, qspan *obs.Span
}

// finish publishes the request's results to the waiting handler and ends
// the request span. Called exactly once, by the worker that owns the
// request.
func (r *request) finish() {
	r.span.End()
	close(r.done)
}

// Submit admits pairs for matching and blocks until every pair is decided
// or ctx is done. It is the single entry point the HTTP handler, the smoke
// check and the load generator all go through.
func (s *Server) Submit(ctx context.Context, pairs []record.Pair) (*MatchResult, error) {
	if len(pairs) == 0 {
		return &MatchResult{}, nil
	}
	if len(pairs) > s.cfg.MaxPairsPerRequest {
		return nil, ErrTooLarge
	}
	s.metrics.requests.Add(1)
	start := time.Now()
	span := s.cfg.Tracer.Root("request")
	span.SetStr("matcher", s.matcher.Name())
	span.SetInt("pairs", int64(len(pairs)))

	res := &MatchResult{Preds: make([]bool, len(pairs)), Cached: make([]bool, len(pairs))}

	// Resolve cache hits up front: hits never enter the queue, never hold
	// a worker, and cost nothing. The probe builds each key in a pooled
	// scratch buffer and looks it up by bytes, so a hit allocates nothing;
	// only misses pay for a durable string copy (which the cache Put needs
	// anyway).
	var misses []record.Pair
	var keys []string
	var slots []int
	var kh uint64
	if s.cacheable() {
		bufp := keyBufPool.Get().(*[]byte)
		buf := *bufp
		for i, p := range pairs {
			buf = s.appendPairKey(buf[:0], p)
			if s.flight != nil {
				kh ^= flight.Hash(buf)
			}
			if match, ok := s.cache.GetBytes(buf); ok {
				res.Preds[i], res.Cached[i] = match, true
				continue
			}
			misses = append(misses, p)
			keys = append(keys, string(buf))
			slots = append(slots, i)
		}
		*bufp = buf
		keyBufPool.Put(bufp)
	} else {
		misses = pairs
		slots = make([]int, len(pairs))
		for i := range slots {
			slots[i] = i
		}
	}
	s.metrics.pairsCached.Add(int64(len(pairs) - len(misses)))
	span.SetInt("cached", int64(len(pairs)-len(misses)))
	if len(misses) == 0 {
		s.metrics.requestsOK.Add(1)
		s.metrics.observeLatency(time.Since(start))
		span.SetStr("outcome", "cache")
		span.End()
		s.flightEdge(kh, flight.CodeCacheHit, len(pairs))
		return res, nil
	}
	return s.submitMisses(ctx, start, span, res, misses, keys, slots, kh)
}

// submitMisses queues the cache-miss pairs and blocks until they are all
// decided or ctx is done. It is the shared tail of the JSON and binary
// request paths. res, misses, keys and slots must be heap-owned by the
// request: on a deadline-expired return the owning worker may still touch
// them, so callers must not recycle these buffers through a pool.
func (s *Server) submitMisses(ctx context.Context, start time.Time, span *obs.Span, res *MatchResult, misses []record.Pair, keys []string, slots []int, kh uint64) (*MatchResult, error) {
	req := &request{
		ctx:      ctx,
		pairs:    misses,
		keys:     keys,
		slots:    slots,
		res:      res,
		done:     make(chan struct{}),
		enqueued: start,
		key:      kh,
		span:     span,
		qspan:    span.Child("queue"),
	}
	if err := s.enqueue(req); err != nil {
		// The request never entered the queue, so this path still owns its
		// spans.
		req.qspan.End()
		span.SetStr("outcome", "shed")
		span.End()
		s.flightEdge(kh, shedCode(err), len(misses))
		return nil, err
	}
	select {
	case <-req.done:
		s.metrics.requestsOK.Add(1)
		s.metrics.observeLatency(time.Since(start))
		return res, nil
	case <-ctx.Done():
		// The request stays queued; its owning worker sees the expired
		// context and discards it without scoring (and ends its spans).
		s.metrics.deadlineExceeded.Add(1)
		return nil, ctx.Err()
	}
}

// enqueue performs bounded, non-blocking admission. The shared lock pairs
// with Shutdown's exclusive lock so a send can never race the queue close.
// Shed signals feed the router's entry-tier breaker (when routing is on),
// so sustained local overload fails new work over instead of re-queueing
// against a saturated path.
func (s *Server) enqueue(req *request) error {
	// SLO-breach admission guard: while an objective is breached, shed a
	// configured fraction of new cache-miss traffic before it can deepen
	// the queue. A round-robin counter (not randomness) makes the shed
	// fraction exact and the decision deterministic per arrival index.
	if pp := s.preShed.Load(); pp > 0 && int64(s.preShedN.Add(1)%1000) < pp {
		s.metrics.shedSLO.Add(1)
		if s.router != nil {
			s.router.NoteShed(ErrSLOShed)
		}
		return ErrSLOShed
	}
	s.admit.RLock()
	defer s.admit.RUnlock()
	if s.draining {
		s.metrics.shedDraining.Add(1)
		if s.router != nil {
			s.router.NoteShed(ErrDraining)
		}
		return ErrDraining
	}
	select {
	case s.queue <- req:
		return nil
	default:
		s.metrics.shedQueueFull.Add(1)
		if s.router != nil {
			s.router.NoteShed(ErrQueueFull)
		}
		return ErrQueueFull
	}
}

// QueueDepth returns the number of requests waiting for a worker.
func (s *Server) QueueDepth() int { return len(s.queue) }

// worker is one scoring goroutine: it blocks on the queue, coalesces
// waiting work into a bounded micro-batch, and scores it under the
// matcher's serving semantics. Workers drain the queue completely after
// Shutdown closes it, which is what makes shutdown graceful.
func (s *Server) worker() {
	defer s.workers.Done()
	for first := range s.queue {
		s.runBatch(s.coalesce(first))
	}
}

// coalesce greedily drains queued requests into first's micro-batch until
// MaxBatch pairs are gathered, the queue empties (after an optional
// BatchWait grace for stragglers), or the queue closes. Request-batch
// matchers never coalesce: each request is its own batch by definition,
// and spreading requests across workers beats serialising them on one.
func (s *Server) coalesce(first *request) []*request {
	batch := []*request{first}
	if s.semantics == SemRequestBatch || s.cfg.MaxBatch <= 1 {
		return batch
	}
	n := len(first.pairs)
	var grace <-chan time.Time
	if s.cfg.BatchWait > 0 {
		t := time.NewTimer(s.cfg.BatchWait)
		defer t.Stop()
		grace = t.C
	}
	for n < s.cfg.MaxBatch {
		select {
		case r, ok := <-s.queue:
			if !ok {
				return batch
			}
			batch = append(batch, r)
			n += len(r.pairs)
		default:
			if grace == nil {
				return batch
			}
			select {
			case r, ok := <-s.queue:
				if !ok {
					return batch
				}
				batch = append(batch, r)
				n += len(r.pairs)
			case <-grace:
				return batch
			}
		}
	}
	return batch
}

// runBatch scores one coalesced micro-batch. Requests whose deadline
// expired while queued are discarded unscored — their handler has already
// answered 503, and scoring them would only steal capacity from live
// traffic.
func (s *Server) runBatch(batch []*request) {
	live := make([]*request, 0, len(batch))
	npairs := 0
	pickup := time.Now()
	for _, r := range batch {
		// Queue wait ends at pickup, whether or not the request is still
		// live.
		s.metrics.queueWait.ObserveSince(r.enqueued)
		r.pickup = pickup
		r.qspan.End()
		if r.ctx != nil && r.ctx.Err() != nil {
			s.metrics.pairsExpired.Add(int64(len(r.pairs)))
			r.span.SetStr("outcome", "expired")
			s.flightScored(r, flight.CodeExpired, -1, 0)
			r.finish()
			continue
		}
		live = append(live, r)
		npairs += len(r.pairs)
	}
	if len(live) == 0 {
		return
	}
	s.metrics.observeBatch(npairs)
	bspan := s.cfg.Tracer.Root("batch")
	bspan.SetInt("requests", int64(len(live)))
	bspan.SetInt("pairs", int64(npairs))
	sspan := bspan.Child("score")
	sctx := obs.WithSpan(context.Background(), sspan)
	switch s.semantics {
	case SemBatchInvariant:
		if s.router != nil {
			s.scoreRouted(sctx, live, npairs)
		} else {
			s.scoreCoalesced(sctx, live, npairs)
		}
	case SemSinglePair:
		s.scoreSingles(sctx, live)
	case SemRequestBatch:
		s.scoreRequests(sctx, live)
	}
	sspan.End()
	bspan.End()
}

// batchScratch is one worker's pooled buffer set for a coalesced scoring
// pass: the flattened pair slice fed to the matcher and the result buffer
// its batch kernel writes into.
type batchScratch struct {
	pairs    []record.Pair
	out      []bool
	outcomes []route.Outcome // routed path only
}

var batchPool = sync.Pool{New: func() any { return &batchScratch{} }}

// scoreCoalesced feeds every live pair to the matcher as one batch — valid
// only under batch-invariant semantics, where the grouping provably cannot
// change any decision — then scatters results back to their requests.
//
// Matchers implementing matchers.BatchPredictor take the zero-allocation
// fast path: pooled pair/result buffers plus the matcher's batch kernel,
// which amortises its own scratch (sequence-matcher state, feature
// vectors) across the whole micro-batch. The pooling is safe because the
// BatchPredictor contract forbids retaining task.Pairs or out; matchers
// without the interface keep the original fresh-slice path, since Predict
// returns a slice whose ownership transfers to the caller.
func (s *Server) scoreCoalesced(ctx context.Context, live []*request, npairs int) {
	task := matchers.Task{Ctx: ctx, Opts: s.opts}
	var preds []bool
	var sc *batchScratch
	t0 := time.Now()
	if bp, ok := s.matcher.(matchers.BatchPredictor); ok {
		sc = batchPool.Get().(*batchScratch)
		task.Pairs = sc.pairs[:0]
		for _, r := range live {
			task.Pairs = append(task.Pairs, r.pairs...)
		}
		if cap(sc.out) < len(task.Pairs) {
			sc.out = make([]bool, len(task.Pairs))
		}
		preds = sc.out[:len(task.Pairs)]
		bp.PredictBatchInto(task, preds)
	} else {
		task.Pairs = make([]record.Pair, 0, npairs)
		for _, r := range live {
			task.Pairs = append(task.Pairs, r.pairs...)
		}
		preds = s.matcher.Predict(task)
	}
	predictUS := time.Since(t0).Microseconds()
	i := 0
	for _, r := range live {
		for j := range r.pairs {
			s.deliver(r, j, preds[i])
			i++
		}
		r.span.SetStr("outcome", "ok")
		s.flightScored(r, flight.CodeScored, -1, predictUS)
		r.finish()
	}
	if sc != nil {
		sc.pairs = task.Pairs[:0]
		sc.out = preds[:0]
		batchPool.Put(sc)
	}
	s.metrics.pairsScored.Add(int64(npairs))
}

// scoreSingles scores each pair as its own batch of one — the canonical
// online semantics for batch-sensitive prompted matchers. The coalesced
// batch still amortises queue handoffs; only the matcher invocation is
// per-pair.
func (s *Server) scoreSingles(ctx context.Context, live []*request) {
	single := make([]record.Pair, 1)
	for _, r := range live {
		t0 := time.Now()
		for j, p := range r.pairs {
			single[0] = p
			preds := s.matcher.Predict(matchers.Task{Pairs: single, Ctx: ctx, Opts: s.opts})
			s.deliver(r, j, preds[0])
			s.metrics.pairsScored.Add(1)
		}
		r.span.SetStr("outcome", "ok")
		s.flightScored(r, flight.CodeScored, -1, time.Since(t0).Microseconds())
		r.finish()
	}
}

// scoreRequests scores each request as its own batch under the request's
// own context — ZeroER's mixture sees exactly the batch the client sent,
// matching offline cmd/emmatch output for the same pairs.
func (s *Server) scoreRequests(ctx context.Context, live []*request) {
	for _, r := range live {
		t0 := time.Now()
		preds, err := matchers.PredictCtx(r.ctx, s.matcher, matchers.Task{Pairs: r.pairs, Ctx: ctx, Opts: s.opts})
		predictUS := time.Since(t0).Microseconds()
		if err == nil {
			for j := range r.pairs {
				s.deliver(r, j, preds[j])
			}
			s.metrics.pairsScored.Add(int64(len(r.pairs)))
			r.span.SetStr("outcome", "ok")
			s.flightScored(r, flight.CodeScored, -1, predictUS)
		} else {
			s.metrics.pairsExpired.Add(int64(len(r.pairs)))
			r.span.SetStr("outcome", "expired")
			s.flightScored(r, flight.CodeExpired, -1, predictUS)
		}
		r.finish()
	}
}

// deliver writes one scored decision into its request slot, feeds the
// prediction cache, and accounts the pair's priced cost.
func (s *Server) deliver(r *request, j int, match bool) {
	r.res.Preds[r.slots[j]] = match
	if r.keys != nil {
		s.cache.Put(r.keys[j], match)
	}
	if s.pricingRate != 0 {
		d, t := s.pairCost(r.pairs[j])
		r.res.CostUSD += d
		r.res.Tokens += t
		s.metrics.scoredTokens.Add(int64(t))
	}
}
