package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/flight"
	"repro/internal/record"
	"repro/internal/slo"
)

func sloSpecs(t *testing.T, s string) []slo.Spec {
	t.Helper()
	specs, err := slo.ParseSpecs(s)
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

func sloPair(l, r string) record.Pair {
	return record.Pair{
		Left:  record.Record{Values: []string{l}},
		Right: record.Record{Values: []string{r}},
	}
}

// The full breach loop on a virtual clock: clean traffic stays OK; a
// scripted shed storm breaches the shed objective; the breach trips the
// admission guard (Submit starts failing with ErrSLOShed), dumps flight
// evidence, and surfaces on /slo; quiet windows recover to OK and lift
// the guard. Everything is driven by manual ticks — no sleeps, no real
// traffic races.
func TestServeSLOBreachGuardsAdmission(t *testing.T) {
	vc := &slo.VirtualClock{}
	rec := flight.New(256)
	dir := t.TempDir()
	dump := flight.NewDumper(rec, dir, time.Nanosecond)
	var transitions []slo.Transition
	srv, err := New(trained(t, "stringsim"), Config{
		MatcherName:        "stringsim",
		Workers:            1,
		CacheCapacity:      64,
		SLOSpecs:           sloSpecs(t, "shed<=10%@8s/2s"),
		SLOClock:           vc,
		SLOResolution:      time.Second,
		SLOTick:            -1, // manual ticks
		BreachShedPermille: 1000,
		Flight:             rec,
		FlightDump:         dump,
		OnSLOTransition:    func(tr slo.Transition) { transitions = append(transitions, tr) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	if srv.SLO() == nil {
		t.Fatal("no SLO engine built")
	}

	// Real traffic first, so the ring holds evidence when the dump fires.
	if _, err := srv.Submit(context.Background(), []record.Pair{sloPair("alpha one", "alpha one")}); err != nil {
		t.Fatal(err)
	}
	tick := func() {
		vc.Advance(time.Second)
		srv.TickSLO()
	}
	tick() // baseline sample

	// Clean windows: OK.
	for i := 0; i < 3; i++ {
		srv.metrics.requests.Add(100)
		tick()
	}
	if w := srv.SLO().Worst(); w != slo.OK {
		t.Fatalf("clean traffic: worst = %v, want OK", w)
	}

	// Shed storm: 50% of requests rejected, both windows burn hot.
	for i := 0; i < 6 && srv.SLO().Worst() != slo.Breach; i++ {
		srv.metrics.requests.Add(100)
		srv.metrics.shedQueueFull.Add(50)
		tick()
	}
	if w := srv.SLO().Worst(); w != slo.Breach {
		t.Fatalf("shed storm never breached: worst = %v", w)
	}
	if n := srv.metrics.sloBreaches.Load(); n == 0 {
		t.Fatal("breach counter not incremented")
	}

	// The guard is up: new cache-miss traffic sheds with ErrSLOShed (429
	// semantics), and the shed is flight-recorded.
	if _, err := srv.Submit(context.Background(), []record.Pair{sloPair("beta two", "gamma three")}); !errors.Is(err, ErrSLOShed) {
		t.Fatalf("breached Submit err = %v, want ErrSLOShed", err)
	}
	if srv.metrics.shedSLO.Load() == 0 {
		t.Fatal("shedSLO counter not incremented")
	}

	// Breach evidence: the dumper wrote a validating JSONL file.
	paths := dump.Paths()
	if len(paths) == 0 {
		t.Fatal("breach produced no flight dump")
	}
	if !strings.Contains(paths[0], "breach-shed") {
		t.Fatalf("dump name %q does not carry the breach reason", paths[0])
	}
	f, err := os.Open(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	n, err := flight.Validate(f)
	f.Close()
	if err != nil || n == 0 {
		t.Fatalf("breach dump invalid: %d records, %v", n, err)
	}

	// /slo reports the breach.
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/slo", nil))
	var sr SLOResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.State != slo.Breach || len(sr.Objectives) == 0 || sr.Breaches == 0 {
		t.Fatalf("/slo = %+v, want breach with objectives", sr)
	}
	if st := srv.Stats(); st.SLOState != "breach" || st.SLOBreaches == 0 || st.ShedSLO == 0 {
		t.Fatalf("Stats SLO fields = %q/%d/%d", st.SLOState, st.SLOBreaches, st.ShedSLO)
	}

	// Recovery: quiet windows drain both burns; the guard lifts.
	for i := 0; i < 12 && srv.SLO().Worst() != slo.OK; i++ {
		tick()
	}
	if w := srv.SLO().Worst(); w != slo.OK {
		t.Fatalf("never recovered: worst = %v", w)
	}
	if _, err := srv.Submit(context.Background(), []record.Pair{sloPair("delta four", "delta four")}); err != nil {
		t.Fatalf("recovered Submit err = %v", err)
	}
	if len(transitions) < 2 {
		t.Fatalf("user transition callback saw %d transitions", len(transitions))
	}
}

// Flight records cover every request outcome: a scored miss, a pure
// cache hit sharing the miss's key hash, and a drain-time shed.
func TestServeFlightRecordsOutcomes(t *testing.T) {
	rec := flight.New(64)
	srv, err := New(trained(t, "stringsim"), Config{
		MatcherName:   "stringsim",
		Workers:       1,
		CacheCapacity: 64,
		Flight:        rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := []record.Pair{sloPair("tokyo tower", "tokyo tower")}
	if _, err := srv.Submit(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()
	if _, err := srv.Submit(context.Background(), []record.Pair{sloPair("osaka", "kyoto")}); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining Submit err = %v", err)
	}

	recs := rec.Snapshot(nil)
	if len(recs) != 3 {
		t.Fatalf("got %d flight records, want 3: %+v", len(recs), recs)
	}
	byCode := map[flight.Code]flight.Record{}
	for _, r := range recs {
		byCode[r.Code] = r
	}
	scored, okS := byCode[flight.CodeScored]
	hit, okH := byCode[flight.CodeCacheHit]
	shed, okD := byCode[flight.CodeShedDrain]
	if !okS || !okH || !okD {
		t.Fatalf("missing outcome codes in %+v", recs)
	}
	if scored.Key == 0 || scored.Key != hit.Key {
		t.Fatalf("scored key %016x != cache-hit key %016x (same pair)", scored.Key, hit.Key)
	}
	if scored.Pairs != 1 || scored.Tier != -1 {
		t.Fatalf("scored record = %+v", scored)
	}
	if shed.Key == scored.Key {
		t.Fatal("distinct pair hashed to the scored key")
	}
	// JSONL write+validate round trip over live records.
	var sb strings.Builder
	n, err := rec.WriteJSONL(&sb)
	if err != nil || n != 3 {
		t.Fatalf("WriteJSONL = %d, %v", n, err)
	}
	if n, err := flight.Validate(strings.NewReader(sb.String())); err != nil || n != 3 {
		t.Fatalf("Validate = %d, %v", n, err)
	}
}

// The wire protocol logs the same flight outcomes as JSON — including
// the all-hit fast path — with matching key hashes across protocols.
func TestServeFlightWireParity(t *testing.T) {
	rec := flight.New(64)
	srv, err := New(trained(t, "stringsim"), Config{
		MatcherName:   "stringsim",
		Workers:       1,
		CacheCapacity: 64,
		Flight:        rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	pairs := []record.Pair{sloPair("wire pair", "wire pair")}
	// JSON submit (miss), then the same pair over the wire (hit).
	if _, err := srv.Submit(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	body := wireChunks(pairs, 1, 0)[0]
	status, _ := srv.ServeWire(context.Background(), body, nil)
	if status != 200 {
		t.Fatalf("wire status %d", status)
	}
	recs := rec.Snapshot(nil)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Key != recs[1].Key {
		t.Fatalf("wire key %016x != json key %016x for the same pair", recs[1].Key, recs[0].Key)
	}
	if recs[1].Code != flight.CodeCacheHit {
		t.Fatalf("wire all-hit logged %v", recs[1].Code)
	}
}

// Latency SLOs bind the real request histogram: /slo 404s without
// objectives, and misconfigured specs fail construction loudly.
func TestServeSLOConfigErrors(t *testing.T) {
	srv, err := New(trained(t, "stringsim"), Config{MatcherName: "stringsim", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/slo", nil))
	if rr.Code != 404 {
		t.Fatalf("/slo without SLOs = %d, want 404", rr.Code)
	}
	if st := srv.Stats(); st.SLOState != "" {
		t.Fatalf("Stats.SLOState = %q without SLOs", st.SLOState)
	}

	// F1 floors are a configuration error on the serving path.
	if _, err := New(trained(t, "stringsim"), Config{
		MatcherName: "stringsim", Workers: 1,
		SLOSpecs: sloSpecs(t, "f1>=0.7"), SLOTick: -1,
	}); err == nil {
		t.Fatal("f1 floor accepted by serve")
	}
}

// The background tick loop runs and stops cleanly with real clocks.
func TestServeSLOBackgroundLoop(t *testing.T) {
	srv, err := New(trained(t, "stringsim"), Config{
		MatcherName: "stringsim", Workers: 1,
		SLOSpecs: sloSpecs(t, "p99<=1s@2s/1s"),
		SLOTick:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.SLO().Ticks() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.SLO().Ticks() == 0 {
		t.Fatal("background loop never ticked")
	}
	srv.Shutdown() // must not hang on the loop
}
