package serve

import (
	"context"
	"errors"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/flight"
	"repro/internal/record"
	"repro/internal/snap"
	"repro/internal/wire"
)

// wireScratch is one request's pooled state on the binary protocol path:
// the reusable frame decoder, the response encoder, the cache-key scratch
// and the decision buffers. With every piece pooled, a fully cached binary
// request runs from bytes-in to bytes-out without allocating.
type wireScratch struct {
	req    wire.Request
	enc    snap.Enc
	key    []byte
	preds  []bool
	cached []bool
}

var wirePool = sync.Pool{New: func() any { return &wireScratch{} }}

// ServeWire answers one binary-protocol request: body is a complete
// request frame, dst receives the response frame (reusing its capacity),
// and the returned status is the HTTP status the frame travels under.
// Errors are answered as TErr frames with the same code, so binary
// clients never need a JSON parser.
//
// This is the zero-copy hot path: pair values are consumed as views into
// body (no string materialisation), cache keys are built in pooled
// scratch, and on a fully cached request nothing escapes to the heap.
// Only cache misses materialise records, because the scoring queue
// outlives the frame buffer.
func (s *Server) ServeWire(ctx context.Context, body, dst []byte) (int, []byte) {
	sc := wirePool.Get().(*wireScratch)
	defer wirePool.Put(sc)

	typ, payload, err := wire.ParseFrame(body)
	if err != nil {
		return s.wireError(dst, &sc.enc, wireStatus(err), err.Error())
	}
	if typ != wire.TReq {
		return s.wireError(dst, &sc.enc, http.StatusBadRequest, "request frame required")
	}
	if err := sc.req.Decode(payload); err != nil {
		return s.wireError(dst, &sc.enc, http.StatusBadRequest, err.Error())
	}
	views := sc.req.Pairs
	if len(views) == 0 {
		return s.wireError(dst, &sc.enc, http.StatusBadRequest, "no pairs in request")
	}
	if len(views) > s.cfg.MaxPairsPerRequest {
		return s.wireError(dst, &sc.enc, http.StatusRequestEntityTooLarge, ErrTooLarge.Error())
	}

	s.metrics.requests.Add(1)
	start := time.Now()
	span := s.cfg.Tracer.Root("request")
	span.SetStr("matcher", s.matcher.Name())
	span.SetStr("proto", "wire")
	span.SetInt("pairs", int64(len(views)))

	// Probe the prediction cache straight off the frame views.
	cacheable := s.cacheable()
	nmiss := len(views)
	var preds, cached []bool
	var kh uint64
	if cacheable {
		if cap(sc.preds) < len(views) {
			sc.preds = make([]bool, len(views))
			sc.cached = make([]bool, len(views))
		}
		preds = sc.preds[:len(views)]
		cached = sc.cached[:len(views)]
		nmiss = 0
		for i, v := range views {
			sc.key = appendWireKey(sc.key[:0], v)
			if s.flight != nil {
				kh ^= flight.Hash(sc.key)
			}
			match, ok := s.cache.GetBytes(sc.key)
			preds[i], cached[i] = match, ok
			if !ok {
				nmiss++
			}
		}
	}
	s.metrics.pairsCached.Add(int64(len(views) - nmiss))
	span.SetInt("cached", int64(len(views)-nmiss))

	if cacheable && nmiss == 0 {
		// All-hit fast path: answer from the probe with pooled buffers.
		// The accounting mirrors Submit's cache return exactly, so /stats
		// cannot tell the two protocols apart.
		s.metrics.requestsOK.Add(1)
		s.metrics.observeLatency(time.Since(start))
		span.SetStr("outcome", "cache")
		span.End()
		s.flightEdge(kh, flight.CodeCacheHit, len(views))
		e := &sc.enc
		e.Reset()
		wire.AppendResponsePayload(e, preds, cached, 0, 0, time.Since(start).Microseconds())
		return http.StatusOK, wire.AppendFrame(dst, wire.TResp, e.Bytes())
	}

	// Miss path: materialise the unresolved pairs out of the frame buffer
	// (the scoring queue outlives it) and hand off to the dispatch tail
	// shared with the JSON path. res and friends must be heap-owned — see
	// submitMisses.
	res := &MatchResult{Preds: make([]bool, len(views)), Cached: make([]bool, len(views))}
	misses := make([]record.Pair, 0, nmiss)
	slots := make([]int, 0, nmiss)
	var keys []string
	if cacheable {
		copy(res.Preds, preds)
		copy(res.Cached, cached)
		keys = make([]string, 0, nmiss)
		for i, v := range views {
			if cached[i] {
				continue
			}
			misses = append(misses, v.Materialize())
			slots = append(slots, i)
			sc.key = appendWireKey(sc.key[:0], v)
			keys = append(keys, string(sc.key))
		}
	} else {
		for i, v := range views {
			misses = append(misses, v.Materialize())
			slots = append(slots, i)
		}
	}

	deadline := s.cfg.DefaultDeadline
	if sc.req.DeadlineMs > 0 {
		deadline = time.Duration(sc.req.DeadlineMs) * time.Millisecond
	}
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	out, err := s.submitMisses(ctx, start, span, res, misses, keys, slots, kh)
	if err != nil {
		return s.wireError(dst, &sc.enc, StatusFor(err), err.Error())
	}
	e := &sc.enc
	e.Reset()
	wire.AppendResponsePayload(e, out.Preds, out.Cached, out.CostUSD, out.Tokens, time.Since(start).Microseconds())
	return http.StatusOK, wire.AppendFrame(dst, wire.TResp, e.Bytes())
}

// wireError encodes a TErr frame into dst via the pooled encoder and
// returns it alongside its HTTP status.
func (s *Server) wireError(dst []byte, e *snap.Enc, status int, msg string) (int, []byte) {
	e.Reset()
	wire.AppendErrorPayload(e, status, msg)
	return status, wire.AppendFrame(dst, wire.TErr, e.Bytes())
}

// wireStatus maps frame-parse errors to HTTP statuses: an oversize
// declared payload gets the same 413 an oversized JSON request would,
// everything else is a malformed request.
func wireStatus(err error) int {
	if errors.Is(err, wire.ErrOversize) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// appendWireKey builds a pair's canonical cache key straight from its
// decoded frame views — byte-identical to Server.appendPairKey on the
// materialised pair, because serving serialization is exactly the record
// values joined with the default separator.
func appendWireKey(dst []byte, v wire.PairView) []byte {
	dst = appendWireRecord(dst, v.Left)
	dst = append(dst, keySep)
	return appendWireRecord(dst, v.Right)
}

func appendWireRecord(dst []byte, vals [][]byte) []byte {
	for i, val := range vals {
		if i > 0 {
			dst = append(dst, record.DefaultSeparator...)
		}
		dst = append(dst, val...)
	}
	return dst
}

// readAllInto reads r into dst (reusing its capacity), refusing bodies
// beyond the largest legal frame so a hostile client cannot balloon the
// pooled buffers.
func readAllInto(dst []byte, r io.Reader) ([]byte, error) {
	const limit = wire.MaxPayload + 16
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
		if len(dst) > limit {
			return dst, wire.ErrOversize
		}
	}
}
