package serve

import (
	"fmt"
	"sync"
	"testing"
)

func TestPredCacheBasic(t *testing.T) {
	c := NewPredCache(128, 4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache should miss")
	}
	c.Put("a", true)
	c.Put("b", false)
	if v, ok := c.Get("a"); !ok || !v {
		t.Fatalf("a: got (%v,%v), want (true,true)", v, ok)
	}
	if v, ok := c.Get("b"); !ok || v {
		t.Fatalf("b: got (%v,%v), want (false,true)", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = (%d,%d), want (2,1)", hits, misses)
	}
	// Overwrite keeps one entry and updates the value.
	c.Put("a", false)
	if v, _ := c.Get("a"); v {
		t.Fatal("overwrite should update the decision")
	}
	if c.Len() != 2 {
		t.Fatalf("Len after overwrite = %d, want 2", c.Len())
	}
}

func TestPredCacheLRUEviction(t *testing.T) {
	// One shard, capacity 3: strict LRU order is observable.
	c := NewPredCache(3, 1)
	c.Put("a", true)
	c.Put("b", true)
	c.Put("c", true)
	c.Get("a") // refresh a; b is now least recent
	c.Put("d", true)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as least recently used")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should have survived eviction", k)
		}
	}
}

func TestPredCacheZeroCapacity(t *testing.T) {
	c := NewPredCache(0, 8)
	c.Put("a", true)
	if _, ok := c.Get("a"); ok {
		t.Fatal("zero-capacity cache must never store")
	}
	if c.Len() != 0 {
		t.Fatal("zero-capacity cache must stay empty")
	}
}

// TestPredCacheConcurrent exercises the sharded LRU under concurrent
// mixed load; run with -race (the verify-parallel gate does).
func TestPredCacheConcurrent(t *testing.T) {
	c := NewPredCache(512, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%997)
				if i%3 == 0 {
					c.Put(key, i%2 == 0)
				} else {
					c.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 512 {
		t.Fatalf("cache exceeded capacity: %d > 512", c.Len())
	}
	// The cache must still behave after the storm.
	c.Put("final", true)
	if v, ok := c.Get("final"); !ok || !v {
		t.Fatal("cache corrupted by concurrent access")
	}
}
