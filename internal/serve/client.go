package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Client-side plumbing for the service's observability surface: the
// fleet router scrapes every replica's /stats and /slo to build its
// aggregate view, and emwatch renders the same snapshots as dashboard
// rows. Both go through these helpers so schema-version checking lives
// in exactly one place.

// ErrStatsSchema reports a /stats body whose schema_version this client
// does not understand.
type ErrStatsSchema struct {
	Got int
}

func (e *ErrStatsSchema) Error() string {
	return fmt.Sprintf("serve: /stats schema version %d, this client understands <= %d",
		e.Got, StatsSchemaVersion)
}

// FetchStats GETs base+"/stats" and decodes the snapshot. A schema
// version newer than this client understands is an error (fields may
// have changed meaning); zero is tolerated as a pre-versioning server.
// ctx cancels the request — the fleet router's probe and stats loops
// must not block shutdown on an unresponsive replica.
func FetchStats(ctx context.Context, client *http.Client, base string) (Stats, error) {
	var st Stats
	if err := getJSON(ctx, client, base+"/stats", &st); err != nil {
		return st, err
	}
	if st.SchemaVersion > StatsSchemaVersion {
		return st, &ErrStatsSchema{Got: st.SchemaVersion}
	}
	return st, nil
}

// FetchSLO GETs base+"/slo". A 404 means the service has no objectives
// configured and returns (nil, nil) — not an error, watchers render it
// as "none configured".
func FetchSLO(ctx context.Context, client *http.Client, base string) (*SLOResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/slo", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var sr SLOResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			return nil, err
		}
		return &sr, nil
	case http.StatusNotFound:
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, nil
	default:
		return nil, fmt.Errorf("%s/slo: status %d", base, resp.StatusCode)
	}
}

// FetchHealthz GETs base+"/healthz" and reports whether the service
// answered 200 — the probe the fleet router's breaker-ejection loop
// runs against every replica. ctx cancels the probe so a hung replica
// cannot stall the probe loop (or Front.Close) for the client timeout.
func FetchHealthz(ctx context.Context, client *http.Client, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s/healthz: status %d", base, resp.StatusCode)
	}
	return nil
}

func getJSON(ctx context.Context, client *http.Client, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
