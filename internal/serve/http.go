package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/record"
	"repro/internal/snap"
	"repro/internal/wire"
)

// PairJSON is one candidate pair on the wire: the two records' attribute
// values in schema order. Record IDs are optional and never shown to the
// matcher (cross-dataset restriction 2 applies online too).
type PairJSON struct {
	LeftID  string   `json:"left_id,omitempty"`
	RightID string   `json:"right_id,omitempty"`
	Left    []string `json:"left"`
	Right   []string `json:"right"`
}

// MatchRequest is the /match request body. Either Left/Right (one pair)
// or Pairs (a batch) must be set.
type MatchRequest struct {
	Left  []string   `json:"left,omitempty"`
	Right []string   `json:"right,omitempty"`
	Pairs []PairJSON `json:"pairs,omitempty"`
	// DeadlineMs bounds this request's total latency; past it the request
	// fails with 503 instead of queueing forever. Zero uses the server's
	// default deadline, if any.
	DeadlineMs int `json:"deadline_ms,omitempty"`
}

// MatchResponse is the /match success body.
type MatchResponse struct {
	Matcher     string  `json:"matcher"`
	Predictions []bool  `json:"predictions"`
	Cached      []bool  `json:"cached"`
	CostUSD     float64 `json:"cost_usd"`
	Tokens      int     `json:"tokens,omitempty"`
	ElapsedMs   float64 `json:"elapsed_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP routes: POST /match, GET /healthz,
// GET /stats, GET /slo (objective states; 404 when no SLOs are
// configured), GET /metrics (Prometheus text), GET /debug/vars (expvar).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/match", s.handleMatch)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/slo", s.handleSLO)
	mux.Handle("/metrics", s.reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	// Content-type negotiation: binary-protocol clients share the endpoint
	// with JSON clients; the body's media type selects the parser and the
	// response format.
	if r.Header.Get("Content-Type") == wire.ContentType {
		s.handleMatchWire(w, r)
		return
	}
	var req MatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	pairs, err := req.ToPairs()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	ctx := r.Context()
	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMs > 0 {
		deadline = time.Duration(req.DeadlineMs) * time.Millisecond
	}
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}

	start := time.Now()
	res, err := s.Submit(ctx, pairs)
	if err != nil {
		writeError(w, StatusFor(err), err.Error())
		return
	}
	rspan := s.cfg.Tracer.Root("respond")
	rspan.SetInt("pairs", int64(len(res.Preds)))
	writeJSON(w, http.StatusOK, MatchResponse{
		Matcher:     s.matcher.Name(),
		Predictions: res.Preds,
		Cached:      res.Cached,
		CostUSD:     res.CostUSD,
		Tokens:      res.Tokens,
		ElapsedMs:   float64(time.Since(start).Microseconds()) / 1000,
	})
	rspan.End()
}

// handleMatchWire answers a binary-framed /match request. Body and
// response buffers come from a pool, so the handler adds no per-request
// garbage on top of what net/http itself allocates; the protocol work
// happens in ServeWire.
func (s *Server) handleMatchWire(w http.ResponseWriter, r *http.Request) {
	bodyp := bodyBufPool.Get().(*[]byte)
	outp := bodyBufPool.Get().(*[]byte)
	defer func() {
		bodyBufPool.Put(bodyp)
		bodyBufPool.Put(outp)
	}()
	body, rerr := readAllInto((*bodyp)[:0], r.Body)
	*bodyp = body
	var status int
	var out []byte
	if rerr != nil {
		var e snap.Enc
		status, out = s.wireError((*outp)[:0], &e, wireStatus(rerr), "unreadable body: "+rerr.Error())
	} else {
		status, out = s.ServeWire(r.Context(), body, (*outp)[:0])
	}
	*outp = out
	w.Header().Set("Content-Type", wire.ContentType)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	_, _ = w.Write(out)
}

// bodyBufPool recycles request-body and response-frame buffers for the
// binary protocol handler.
var bodyBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// ToPairs validates the request and converts it to record pairs. Exported
// for front-router reuse: the fleet's JSON /match handler accepts the
// same request shape and must apply the same validation.
func (r *MatchRequest) ToPairs() ([]record.Pair, error) {
	single := len(r.Left) > 0 || len(r.Right) > 0
	if single && len(r.Pairs) > 0 {
		return nil, errors.New("set either left/right or pairs, not both")
	}
	if single {
		if len(r.Left) == 0 || len(r.Right) == 0 {
			return nil, errors.New("both left and right are required")
		}
		return []record.Pair{{
			Left:  record.Record{Values: r.Left},
			Right: record.Record{Values: r.Right},
		}}, nil
	}
	if len(r.Pairs) == 0 {
		return nil, errors.New("no pairs in request")
	}
	pairs := make([]record.Pair, 0, len(r.Pairs))
	for i, p := range r.Pairs {
		if len(p.Left) == 0 || len(p.Right) == 0 {
			return nil, fmt.Errorf("pair %d: both left and right are required", i)
		}
		pairs = append(pairs, record.Pair{
			Left:  record.Record{ID: p.LeftID, Values: p.Left},
			Right: record.Record{ID: p.RightID, Values: p.Right},
		})
	}
	return pairs, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.admit.RLock()
	draining := s.draining
	s.admit.RUnlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"matcher":    s.matcher.Name(),
		"semantics":  s.semantics.String(),
		"uptime_sec": time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// StatusFor maps pipeline errors onto HTTP status codes: a full queue is
// retryable back-pressure (429), draining and expired deadlines are
// service-side unavailability (503), oversized requests are the client's
// fault (413). Exported so the fleet front router maps its own Submit
// errors onto the exact same statuses a single replica would return.
func StatusFor(err error) int {
	switch {
	case errors.Is(err, ErrTooLarge):
		return http.StatusRequestEntityTooLarge
	// The typed backend errors subsume the serve shed signals (ErrQueueFull
	// wraps ErrOverloaded, ErrDraining wraps ErrUnavailable), so any layer
	// that sheds with them — local admission or a routed backend — maps to
	// the same status the retryable classification implies.
	case errors.Is(err, backend.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, backend.ErrUnavailable), errors.Is(err, backend.ErrDeadline):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// jsonWriter is a pooled buffer + encoder pair: the encoder writes into
// the buffer, the buffer flushes to the ResponseWriter in one call, and
// both are recycled — no json.Encoder or bytes.Buffer garbage per
// response.
type jsonWriter struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonPool = sync.Pool{New: func() any {
	jw := &jsonWriter{}
	jw.enc = json.NewEncoder(&jw.buf)
	jw.enc.SetIndent("", "  ")
	return jw
}}

func writeJSON(w http.ResponseWriter, status int, v any) {
	jw := jsonPool.Get().(*jsonWriter)
	defer jsonPool.Put(jw)
	jw.buf.Reset()
	if err := jw.enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	_, _ = w.Write(jw.buf.Bytes())
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
