package serve

import (
	"sync"
	"sync/atomic"
)

// PredCache is the sharded LRU prediction cache of the serving subsystem.
// It memoises final match decisions keyed by the canonical serialized pair,
// so a hit skips the entire scoring pipeline: no re-serialization, no text
// profiling, no featurization, no model call — and, for prompted matchers,
// no per-token dollar cost. Online matching traffic is heavily repetitive
// (the same hot catalog entries are compared again and again), which is
// what makes a bounded decision cache the cheapest capacity lever the
// service has.
//
// The cache is sharded to keep lock contention off the hot path: keys are
// FNV-1a hashed to a power-of-two shard count and each shard maintains an
// independent LRU list under its own mutex. Entries are tiny (key string +
// one bool), so capacity is counted in entries, not bytes.
type PredCache struct {
	shards []cacheShard
	mask   uint64

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheShard struct {
	mu  sync.Mutex
	m   map[string]*cacheNode
	cap int
	// Doubly-linked LRU list: head is most recent, tail least recent.
	head, tail *cacheNode
}

type cacheNode struct {
	key        string
	match      bool
	prev, next *cacheNode
}

// NewPredCache returns a cache holding at most capacity entries across
// nshards shards (rounded up to a power of two; both arguments get sane
// defaults when non-positive). A zero-capacity cache is valid and never
// stores anything — the cache-off configuration of the load generator's
// baseline.
func NewPredCache(capacity, nshards int) *PredCache {
	if capacity < 0 {
		capacity = 0
	}
	if nshards <= 0 {
		nshards = 16
	}
	n := 1
	for n < nshards {
		n <<= 1
	}
	// Distribute capacity across shards, rounding up so the total is never
	// below the requested capacity.
	per := (capacity + n - 1) / n
	c := &PredCache{shards: make([]cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*cacheNode)
		c.shards[i].cap = per
	}
	return c
}

// Get looks up the cached decision for a canonical pair key, refreshing
// its recency on a hit.
func (c *PredCache) Get(key string) (match, ok bool) {
	s := &c.shards[fnv64str(key)&c.mask]
	s.mu.Lock()
	n, ok := s.m[key]
	if ok {
		s.moveToFront(n)
		match = n.match
	}
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return match, ok
}

// GetBytes is Get for a key held in a scratch buffer. The compiler's
// map-lookup optimisation for m[string(b)] means the conversion never
// allocates, which is what makes the serving hot path's cache probe free:
// the caller builds the canonical key in a pooled []byte and probes
// without ever interning it.
func (c *PredCache) GetBytes(key []byte) (match, ok bool) {
	s := &c.shards[fnv64bytes(key)&c.mask]
	s.mu.Lock()
	n, ok := s.m[string(key)]
	if ok {
		s.moveToFront(n)
		match = n.match
	}
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return match, ok
}

// Put stores a decision, evicting the shard's least-recently-used entry
// when the shard is full.
func (c *PredCache) Put(key string, match bool) {
	s := &c.shards[fnv64str(key)&c.mask]
	if s.cap <= 0 {
		return
	}
	s.mu.Lock()
	if n, ok := s.m[key]; ok {
		n.match = match
		s.moveToFront(n)
		s.mu.Unlock()
		return
	}
	if len(s.m) >= s.cap {
		// Evict the tail.
		t := s.tail
		s.unlink(t)
		delete(s.m, t.key)
	}
	n := &cacheNode{key: key, match: match}
	s.m[key] = n
	s.pushFront(n)
	s.mu.Unlock()
}

// Len returns the number of cached decisions.
func (c *PredCache) Len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += len(s.m)
		s.mu.Unlock()
	}
	return total
}

// Stats reports cumulative hit and miss counts.
func (c *PredCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (c *PredCache) HitRate() float64 {
	h, m := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

func (s *cacheShard) pushFront(n *cacheNode) {
	n.prev = nil
	n.next = s.head
	if s.head != nil {
		s.head.prev = n
	}
	s.head = n
	if s.tail == nil {
		s.tail = n
	}
}

func (s *cacheShard) unlink(n *cacheNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (s *cacheShard) moveToFront(n *cacheNode) {
	if s.head == n {
		return
	}
	s.unlink(n)
	s.pushFront(n)
}

// fnv64str is FNV-1a over a string, the shard selector.
func fnv64str(s string) uint64 {
	const (
		offset64 = 1469598103934665603
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// fnv64bytes is fnv64str over a byte slice — same hash, so GetBytes and
// Put agree on the shard for equal key content.
func fnv64bytes(b []byte) uint64 {
	const (
		offset64 = 1469598103934665603
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= prime64
	}
	return h
}
