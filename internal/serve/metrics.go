package serve

import (
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/route"
)

// metrics holds the server's instrumentation handles, all registered in
// one obs.Registry carrying the matcher name as a constant label. The
// hot-path recording characteristics are unchanged from the package's
// original hand-rolled counters — single atomic adds, no aggregation
// locks — but the registry buys Prometheus/JSON/expvar exposition and
// interpolated histogram quantiles for free.
type metrics struct {
	requests         *obs.Counter // admitted /match requests
	requestsOK       *obs.Counter // requests answered with predictions
	shedQueueFull    *obs.Counter // rejected: admission queue full (429)
	shedDraining     *obs.Counter // rejected: draining (503)
	shedSLO          *obs.Counter // rejected: SLO-breach admission guard (429)
	deadlineExceeded *obs.Counter // failed: deadline expired waiting (503)

	sloBreaches *obs.Counter // SLO objectives entering BREACH

	pairsScored  *obs.Counter // pairs the matcher actually scored
	pairsCached  *obs.Counter // pairs answered from the prediction cache
	pairsExpired *obs.Counter // queued pairs discarded past their deadline

	scoredTokens *obs.Counter // priced input tokens across scored pairs

	// batchSizes counts micro-batches by exact pair count (linear
	// unit-width buckets, clamped to the configured maximum).
	batchSizes *obs.Histogram
	// latency is request latency in microseconds (log2 buckets).
	latency *obs.Histogram
	// queueWait is the time admitted requests spent queued before a
	// worker picked them up, in microseconds (log2 buckets).
	queueWait *obs.Histogram
}

func (m *metrics) init(reg *obs.Registry, maxBatch int) {
	m.requests = reg.Counter("emserve_requests_total", "admitted /match requests")
	m.requestsOK = reg.Counter("emserve_requests_ok_total", "requests answered with predictions")
	m.shedQueueFull = reg.Counter("emserve_shed_queue_full_total", "requests rejected with 429: admission queue full")
	m.shedDraining = reg.Counter("emserve_shed_draining_total", "requests rejected with 503: server draining")
	m.shedSLO = reg.Counter("emserve_shed_slo_total", "requests rejected with 429 by the SLO-breach admission guard")
	m.sloBreaches = reg.Counter("emserve_slo_breaches_total", "SLO objectives entering BREACH")
	m.deadlineExceeded = reg.Counter("emserve_deadline_exceeded_total", "requests failed with 503: deadline expired while queued")
	m.pairsScored = reg.Counter("emserve_pairs_scored_total", "pairs scored by the matcher")
	m.pairsCached = reg.Counter("emserve_pairs_cached_total", "pairs answered from the prediction cache")
	m.pairsExpired = reg.Counter("emserve_pairs_expired_total", "queued pairs discarded past their deadline")
	m.scoredTokens = reg.Counter("emserve_tokens_total", "priced input tokens across scored pairs")
	m.batchSizes = reg.LinearHistogram("emserve_batch_pairs", "micro-batch sizes in pairs", maxBatch)
	m.latency = reg.Log2Histogram("emserve_latency_us", "request latency in microseconds")
	m.queueWait = reg.Log2Histogram("emserve_queue_wait_us", "queue wait before a worker pickup, in microseconds")
}

func (m *metrics) observeBatch(n int) { m.batchSizes.Observe(int64(n)) }

func (m *metrics) observeLatency(d time.Duration) { m.latency.ObserveDuration(d) }

// StatsSchemaVersion is the version of the machine-readable /stats
// schema. Consumers (emwatch, the fleet router) check it instead of
// guessing field semantics by reflection: bump it whenever a field's
// meaning, unit or presence rule changes, and extend FetchStats'
// tolerance accordingly. Version 1 is the first explicitly versioned
// schema; a missing/zero field marks a pre-versioning server.
const StatsSchemaVersion = 1

// Stats is the /stats snapshot.
//
// Presence rules: numeric fields whose zero is meaningful (counters,
// quantiles) are always emitted — omitempty on them would make "zero"
// and "absent" indistinguishable to fleet-level aggregators. Only true
// presence markers (SLOState, PricingModel, Routed) use omitempty.
type Stats struct {
	SchemaVersion int     `json:"schema_version"`
	Matcher       string  `json:"matcher"`
	Semantics     string  `json:"semantics"`
	UptimeSec     float64 `json:"uptime_sec"`

	Requests         int64 `json:"requests"`
	RequestsOK       int64 `json:"requests_ok"`
	ShedQueueFull    int64 `json:"shed_queue_full"`
	ShedDraining     int64 `json:"shed_draining"`
	ShedSLO          int64 `json:"shed_slo"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`

	// SLOState is the worst objective state ("ok"/"warn"/"breach");
	// empty when no SLOs are configured. SLOBreaches counts objectives
	// that entered BREACH since startup — never omitempty: a configured
	// engine with zero breaches must serialize the zero, or a consumer
	// cannot tell "healthy" from "field dropped".
	SLOState    string `json:"slo_state,omitempty"`
	SLOBreaches int64  `json:"slo_breaches"`

	PairsScored  int64 `json:"pairs_scored"`
	PairsCached  int64 `json:"pairs_cached"`
	PairsExpired int64 `json:"pairs_expired"`

	QueueDepth int     `json:"queue_depth"`
	Workers    int     `json:"workers"`
	MaxBatch   int     `json:"max_batch"`
	MeanBatch  float64 `json:"mean_batch"`
	// BatchSizes maps micro-batch size (as a 1-based index into the
	// slice) to how many batches of that size ran; index 0 is unused.
	BatchSizes []int64 `json:"batch_sizes"`
	// Batch size quantiles — exact, the linear buckets hold one size each.
	BatchP50 float64 `json:"batch_p50"`
	BatchP95 float64 `json:"batch_p95"`
	BatchP99 float64 `json:"batch_p99"`

	CacheLen     int     `json:"cache_len"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	// Latency and queue-wait quantiles in microseconds, interpolated
	// within the log2 buckets (see obs.Histogram.Quantile).
	LatencyP50Us   float64 `json:"latency_p50_us"`
	LatencyP95Us   float64 `json:"latency_p95_us"`
	LatencyP99Us   float64 `json:"latency_p99_us"`
	QueueWaitP50Us float64 `json:"queue_wait_p50_us"`
	QueueWaitP95Us float64 `json:"queue_wait_p95_us"`
	QueueWaitP99Us float64 `json:"queue_wait_p99_us"`

	PricingModel string  `json:"pricing_model,omitempty"`
	RatePer1K    float64 `json:"rate_per_1k_tokens,omitempty"`
	ScoredTokens int64   `json:"scored_tokens"`
	TotalCostUSD float64 `json:"total_cost_usd"`

	// Routed, when non-nil, is the routing cascade's snapshot: per-tier
	// attempts, retries, failures, hedges and breaker states, plus the
	// escalation/failover/degraded totals and the routed bill (which is
	// also folded into TotalCostUSD).
	Routed *route.Stats `json:"routed,omitempty"`
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	m := &s.metrics
	st := Stats{
		SchemaVersion:    StatsSchemaVersion,
		Matcher:          s.matcher.Name(),
		Semantics:        s.semantics.String(),
		UptimeSec:        time.Since(s.started).Seconds(),
		Requests:         m.requests.Load(),
		RequestsOK:       m.requestsOK.Load(),
		ShedQueueFull:    m.shedQueueFull.Load(),
		ShedDraining:     m.shedDraining.Load(),
		ShedSLO:          m.shedSLO.Load(),
		DeadlineExceeded: m.deadlineExceeded.Load(),
		PairsScored:      m.pairsScored.Load(),
		PairsCached:      m.pairsCached.Load(),
		PairsExpired:     m.pairsExpired.Load(),
		QueueDepth:       s.QueueDepth(),
		Workers:          s.cfg.Workers,
		MaxBatch:         s.cfg.MaxBatch,
		MeanBatch:        m.batchSizes.Mean(),
		BatchSizes:       m.batchSizes.BucketCounts(),
		BatchP50:         m.batchSizes.Quantile(0.50),
		BatchP95:         m.batchSizes.Quantile(0.95),
		BatchP99:         m.batchSizes.Quantile(0.99),
		CacheLen:         s.cache.Len(),
		LatencyP50Us:     m.latency.Quantile(0.50),
		LatencyP95Us:     m.latency.Quantile(0.95),
		LatencyP99Us:     m.latency.Quantile(0.99),
		QueueWaitP50Us:   m.queueWait.Quantile(0.50),
		QueueWaitP95Us:   m.queueWait.Quantile(0.95),
		QueueWaitP99Us:   m.queueWait.Quantile(0.99),
		PricingModel:     s.pricingModel,
		RatePer1K:        s.pricingRate,
		ScoredTokens:     m.scoredTokens.Load(),
	}
	st.CacheHits, st.CacheMisses = s.cache.Stats()
	st.CacheHitRate = s.cache.HitRate()
	if s.pricingRate != 0 {
		st.TotalCostUSD = float64(st.ScoredTokens) / 1000 * s.pricingRate
	}
	if s.router != nil {
		rs := s.router.Stats()
		st.Routed = &rs
		st.TotalCostUSD += rs.CostUSD
	}
	if s.sloEngine != nil {
		st.SLOState = strings.ToLower(s.sloEngine.Worst().String())
		st.SLOBreaches = m.sloBreaches.Load()
	}
	return st
}
