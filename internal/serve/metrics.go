package serve

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// metrics is the server's lock-free instrumentation: plain atomic counters
// plus two fixed-bucket histograms (batch sizes and request latency).
// Everything is written on the hot path with single atomic adds and read
// only by /stats snapshots, so there is no aggregation lock anywhere.
type metrics struct {
	requests         atomic.Int64 // admitted /match requests
	requestsOK       atomic.Int64 // requests answered with predictions
	shedQueueFull    atomic.Int64 // rejected: admission queue full (429)
	shedDraining     atomic.Int64 // rejected: draining (503)
	deadlineExceeded atomic.Int64 // failed: deadline expired waiting (503)

	pairsScored  atomic.Int64 // pairs the matcher actually scored
	pairsCached  atomic.Int64 // pairs answered from the prediction cache
	pairsExpired atomic.Int64 // queued pairs discarded past their deadline

	scoredTokens atomic.Int64 // priced input tokens across scored pairs

	// batchSizes[k] counts micro-batches of exactly k pairs (k clamped to
	// the configured maximum).
	batchSizes []atomic.Int64

	// latency is a log2 histogram of request latency in microseconds:
	// bucket k counts requests with latency in [2^(k-1), 2^k) µs. 40
	// buckets span sub-microsecond to ~6 days.
	latency [40]atomic.Int64
}

func (m *metrics) init(maxBatch int) {
	m.batchSizes = make([]atomic.Int64, maxBatch+1)
}

func (m *metrics) observeBatch(n int) {
	if n >= len(m.batchSizes) {
		n = len(m.batchSizes) - 1
	}
	m.batchSizes[n].Add(1)
}

func (m *metrics) observeLatency(d time.Duration) {
	us := uint64(d.Microseconds())
	k := bits.Len64(us) // 0 for <1µs
	if k >= len(m.latency) {
		k = len(m.latency) - 1
	}
	m.latency[k].Add(1)
}

// latencyQuantile returns the upper bound (in microseconds) of the bucket
// containing quantile q, or 0 with no observations. Log2 buckets bound the
// relative error at 2x — coarse, but allocation-free and exact enough for
// p50/p95/p99 load reporting.
func (m *metrics) latencyQuantile(q float64) float64 {
	var total int64
	for i := range m.latency {
		total += m.latency[i].Load()
	}
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total-1)) + 1
	var seen int64
	for i := range m.latency {
		seen += m.latency[i].Load()
		if seen >= rank {
			return float64(uint64(1) << i)
		}
	}
	return float64(uint64(1) << (len(m.latency) - 1))
}

// Stats is the /stats snapshot.
type Stats struct {
	Matcher   string `json:"matcher"`
	Semantics string `json:"semantics"`
	UptimeSec float64 `json:"uptime_sec"`

	Requests         int64 `json:"requests"`
	RequestsOK       int64 `json:"requests_ok"`
	ShedQueueFull    int64 `json:"shed_queue_full"`
	ShedDraining     int64 `json:"shed_draining"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`

	PairsScored  int64 `json:"pairs_scored"`
	PairsCached  int64 `json:"pairs_cached"`
	PairsExpired int64 `json:"pairs_expired"`

	QueueDepth int     `json:"queue_depth"`
	Workers    int     `json:"workers"`
	MaxBatch   int     `json:"max_batch"`
	MeanBatch  float64 `json:"mean_batch"`
	// BatchSizes maps micro-batch size (as a 1-based index into the
	// slice) to how many batches of that size ran; index 0 is unused.
	BatchSizes []int64 `json:"batch_sizes"`

	CacheLen     int     `json:"cache_len"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	LatencyP50Us float64 `json:"latency_p50_us"`
	LatencyP95Us float64 `json:"latency_p95_us"`
	LatencyP99Us float64 `json:"latency_p99_us"`

	PricingModel string  `json:"pricing_model,omitempty"`
	RatePer1K    float64 `json:"rate_per_1k_tokens,omitempty"`
	ScoredTokens int64   `json:"scored_tokens"`
	TotalCostUSD float64 `json:"total_cost_usd"`
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	m := &s.metrics
	st := Stats{
		Matcher:          s.matcher.Name(),
		Semantics:        s.semantics.String(),
		UptimeSec:        time.Since(s.started).Seconds(),
		Requests:         m.requests.Load(),
		RequestsOK:       m.requestsOK.Load(),
		ShedQueueFull:    m.shedQueueFull.Load(),
		ShedDraining:     m.shedDraining.Load(),
		DeadlineExceeded: m.deadlineExceeded.Load(),
		PairsScored:      m.pairsScored.Load(),
		PairsCached:      m.pairsCached.Load(),
		PairsExpired:     m.pairsExpired.Load(),
		QueueDepth:       s.QueueDepth(),
		Workers:          s.cfg.Workers,
		MaxBatch:         s.cfg.MaxBatch,
		CacheLen:         s.cache.Len(),
		LatencyP50Us:     m.latencyQuantile(0.50),
		LatencyP95Us:     m.latencyQuantile(0.95),
		LatencyP99Us:     m.latencyQuantile(0.99),
		PricingModel:     s.pricingModel,
		RatePer1K:        s.pricingRate,
		ScoredTokens:     m.scoredTokens.Load(),
	}
	st.CacheHits, st.CacheMisses = s.cache.Stats()
	st.CacheHitRate = s.cache.HitRate()
	st.BatchSizes = make([]int64, len(m.batchSizes))
	var batches, pairs int64
	for i := range m.batchSizes {
		c := m.batchSizes[i].Load()
		st.BatchSizes[i] = c
		batches += c
		pairs += c * int64(i)
	}
	if batches > 0 {
		st.MeanBatch = float64(pairs) / float64(batches)
	}
	if s.pricingRate != 0 {
		st.TotalCostUSD = float64(st.ScoredTokens) / 1000 * s.pricingRate
	}
	return st
}
