// Package record defines the data model of the study: records, relations,
// labeled record pairs and benchmark datasets, together with the
// serialization logic that turns record pairs into the string inputs
// consumed by language-model matchers.
//
// The model follows the paper's formalisation (§2.1): two input relations
// R_left and R_right with k aligned attributes, and a matcher that decides
// whether a pair (r_l, r_r) refers to the same real-world entity. Under the
// cross-dataset restrictions, matchers may only see attribute *values* as
// strings — never column names or types — which is why serialization
// deliberately omits the schema.
package record

import (
	"fmt"
	"strings"
)

// Record is a single tuple: an ordered list of attribute values, already
// cast to strings. Position i corresponds to schema attribute i. Empty
// strings model missing values, which the benchmark datasets contain.
type Record struct {
	// ID identifies the record within its relation; it is never shown to a
	// matcher (cross-dataset restriction 2 forbids schema/identity hints).
	ID string
	// Values holds the attribute values in schema order.
	Values []string
}

// Clone returns a deep copy of the record.
func (r Record) Clone() Record {
	return Record{ID: r.ID, Values: append([]string(nil), r.Values...)}
}

// Schema describes the aligned attributes of a dataset's two relations.
// Matchers never see it (restriction 2); it exists for dataset generation,
// debugging, and for the one method in the study that partially violates
// the restriction (ZeroER needs column type information, as the paper
// notes).
type Schema struct {
	// Names holds human-readable attribute names, e.g. "title".
	Names []string
	// Types holds the logical type per attribute, used only by ZeroER's
	// similarity-function selection.
	Types []AttrType
}

// AttrType is the logical type of an attribute.
type AttrType int

// Attribute types understood by the similarity-function selector.
const (
	AttrText    AttrType = iota // free text: titles, descriptions
	AttrShort                   // short categorical strings: brand, genre
	AttrNumeric                 // numbers serialised as strings: price, year
)

// String returns a debug name for the attribute type.
func (t AttrType) String() string {
	switch t {
	case AttrText:
		return "text"
	case AttrShort:
		return "short"
	case AttrNumeric:
		return "numeric"
	default:
		return fmt.Sprintf("AttrType(%d)", int(t))
	}
}

// NumAttrs returns the number of attributes in the schema.
func (s Schema) NumAttrs() int { return len(s.Names) }

// Pair is a candidate record pair from R_left × R_right.
type Pair struct {
	Left  Record
	Right Record
}

// LabeledPair is a candidate pair with its ground-truth match label.
type LabeledPair struct {
	Pair
	// Match is true when the two records refer to the same entity.
	Match bool
}

// Label returns the label as 0/1, the encoding used by the classifiers.
func (p LabeledPair) Label() float64 {
	if p.Match {
		return 1
	}
	return 0
}

// Dataset is one benchmark dataset: a named collection of labeled pairs
// drawn from two relations with a shared schema.
type Dataset struct {
	// Name is the short dataset code used throughout the paper,
	// e.g. "ABT" or "DBGO".
	Name string
	// FullName is the descriptive dataset name, e.g. "Abt-Buy".
	FullName string
	// Domain is the paper's domain label, e.g. "web product".
	Domain string
	// Schema describes the aligned attributes (hidden from matchers).
	Schema Schema
	// Pairs holds all labeled candidate pairs.
	Pairs []LabeledPair
}

// Positives returns the number of matching pairs.
func (d *Dataset) Positives() int {
	n := 0
	for _, p := range d.Pairs {
		if p.Match {
			n++
		}
	}
	return n
}

// Negatives returns the number of non-matching pairs.
func (d *Dataset) Negatives() int { return len(d.Pairs) - d.Positives() }

// ImbalanceRate returns the share of negative pairs, the skew measure used
// by the Finding-6 correlation analysis.
func (d *Dataset) ImbalanceRate() float64 {
	if len(d.Pairs) == 0 {
		return 0
	}
	return float64(d.Negatives()) / float64(len(d.Pairs))
}

// Split partitions the dataset's pairs into two datasets by the given
// indices; used by the evaluation harness for test downsampling.
func (d *Dataset) Subset(indices []int) *Dataset {
	sub := &Dataset{Name: d.Name, FullName: d.FullName, Domain: d.Domain, Schema: d.Schema}
	sub.Pairs = make([]LabeledPair, 0, len(indices))
	for _, i := range indices {
		sub.Pairs = append(sub.Pairs, d.Pairs[i])
	}
	return sub
}

// SerializeOptions controls how a record pair is rendered to a string.
type SerializeOptions struct {
	// ColumnOrder optionally permutes the attribute order before
	// serialization. The paper varies serialization across random seeds by
	// shuffling column order (§2.2 "Repetitions"); a nil order keeps the
	// schema order.
	ColumnOrder []int
	// Separator joins attribute values; the StringSim baseline uses ", ".
	Separator string
	// Cache, when non-nil, memoises serializations across runs. The
	// evaluation harness installs one shared cache so the matcher
	// configurations of a quality table stop re-serializing the same fixed
	// test sets from scratch; see SerializeCache.
	Cache *SerializeCache
}

// DefaultSeparator is the attribute separator used when none is given.
const DefaultSeparator = ", "

// SerializeRecord renders a single record as a separator-joined value list.
// Per cross-dataset restriction 2, no attribute names are included.
func SerializeRecord(r Record, opts SerializeOptions) string {
	if opts.Cache != nil {
		return opts.Cache.record(r, opts)
	}
	sep := opts.Separator
	if sep == "" {
		sep = DefaultSeparator
	}
	vals := r.Values
	if opts.ColumnOrder != nil {
		vals = make([]string, 0, len(r.Values))
		for _, i := range opts.ColumnOrder {
			if i >= 0 && i < len(r.Values) {
				vals = append(vals, r.Values[i])
			}
		}
	}
	return strings.Join(vals, sep)
}

// SerializePair renders a candidate pair in the two-entity prompt layout
// used by the language-model matchers: each record on its own labelled
// line. Attribute names are never included.
func SerializePair(p Pair, opts SerializeOptions) string {
	var b strings.Builder
	b.WriteString("Entity A: ")
	b.WriteString(SerializeRecord(p.Left, opts))
	b.WriteString("\nEntity B: ")
	b.WriteString(SerializeRecord(p.Right, opts))
	return b.String()
}
