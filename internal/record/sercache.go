package record

import (
	"sync"
	"sync/atomic"
)

// SerializeCache memoises record serializations across evaluation runs.
// The leave-one-dataset-out study serialises the same fixed test sets once
// per (matcher, seed, target) run — hundreds of times per record over a
// full quality table — and the serialized string depends only on the
// record's values, the column order and the separator, so a single shared
// cache eliminates the repeated work.
//
// The cache is safe for concurrent use: entries are written once and then
// only read, which fits the parallel evaluation engine's read-mostly
// access pattern. Keys fingerprint the record ID, every value, the column
// order and the separator, so derived records (e.g. Ditto's summarised
// copies, which keep the original ID but truncate values) can never
// observe each other's entries; as a second guard an entry is only
// returned when its stored record ID also matches.
type SerializeCache struct {
	mu sync.RWMutex
	m  map[uint64]serCacheEntry

	hits   atomic.Int64
	misses atomic.Int64
}

type serCacheEntry struct {
	id string
	s  string
}

// NewSerializeCache returns an empty cache.
func NewSerializeCache() *SerializeCache {
	return &SerializeCache{m: make(map[uint64]serCacheEntry)}
}

// Stats reports the cumulative hit and miss counts, for benchmarks and
// capacity planning.
func (c *SerializeCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of cached serializations.
func (c *SerializeCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// record looks up (or computes and stores) the serialization of r under
// opts. The compute callback receives opts with the cache stripped so the
// underlying serializer cannot recurse.
func (c *SerializeCache) record(r Record, opts SerializeOptions) string {
	key := serCacheKey(r, opts)
	c.mu.RLock()
	e, ok := c.m[key]
	c.mu.RUnlock()
	if ok && e.id == r.ID {
		c.hits.Add(1)
		return e.s
	}
	c.misses.Add(1)
	plain := opts
	plain.Cache = nil
	s := SerializeRecord(r, plain)
	if ok {
		// Fingerprint collision against a different record: serve the
		// freshly computed string and keep the existing entry.
		return s
	}
	c.mu.Lock()
	if _, exists := c.m[key]; !exists {
		c.m[key] = serCacheEntry{id: r.ID, s: s}
	}
	c.mu.Unlock()
	return s
}

// serCacheKey fingerprints everything the serialization depends on with
// FNV-1a: the record identity and values, the column order and the
// separator.
func serCacheKey(r Record, opts SerializeOptions) uint64 {
	const (
		offset64 = 1469598103934665603
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff // field separator, so ("ab","c") != ("a","bc")
		h *= prime64
	}
	mix(r.ID)
	for _, v := range r.Values {
		mix(v)
	}
	// A nil order means schema order, while a non-nil (even empty) order
	// projects; the marker keeps the two from colliding.
	if opts.ColumnOrder != nil {
		h ^= 0xa5
		h *= prime64
		for _, i := range opts.ColumnOrder {
			h ^= uint64(i) + 0x9e3779b97f4a7c15
			h *= prime64
		}
	}
	mix(opts.Separator)
	return h
}
