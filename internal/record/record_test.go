package record

import (
	"strings"
	"testing"
)

func sampleDataset() *Dataset {
	return &Dataset{
		Name: "TEST", FullName: "Test", Domain: "testing",
		Schema: Schema{
			Names: []string{"name", "price"},
			Types: []AttrType{AttrText, AttrNumeric},
		},
		Pairs: []LabeledPair{
			{Pair: Pair{Left: Record{ID: "l1", Values: []string{"a", "1"}}, Right: Record{ID: "r1", Values: []string{"a", "1"}}}, Match: true},
			{Pair: Pair{Left: Record{ID: "l2", Values: []string{"b", "2"}}, Right: Record{ID: "r2", Values: []string{"c", "3"}}}, Match: false},
			{Pair: Pair{Left: Record{ID: "l3", Values: []string{"d", "4"}}, Right: Record{ID: "r3", Values: []string{"e", "5"}}}, Match: false},
		},
	}
}

func TestRecordClone(t *testing.T) {
	r := Record{ID: "x", Values: []string{"a", "b"}}
	c := r.Clone()
	c.Values[0] = "mutated"
	if r.Values[0] != "a" {
		t.Fatal("Clone shares backing array")
	}
}

func TestSchemaNumAttrs(t *testing.T) {
	s := Schema{Names: []string{"a", "b", "c"}}
	if s.NumAttrs() != 3 {
		t.Fatalf("NumAttrs = %d", s.NumAttrs())
	}
}

func TestAttrTypeString(t *testing.T) {
	if AttrText.String() != "text" || AttrShort.String() != "short" || AttrNumeric.String() != "numeric" {
		t.Fatal("AttrType names wrong")
	}
	if !strings.Contains(AttrType(99).String(), "99") {
		t.Fatal("unknown AttrType should include value")
	}
}

func TestLabeledPairLabel(t *testing.T) {
	if (LabeledPair{Match: true}).Label() != 1 || (LabeledPair{Match: false}).Label() != 0 {
		t.Fatal("Label encoding wrong")
	}
}

func TestDatasetCounts(t *testing.T) {
	d := sampleDataset()
	if d.Positives() != 1 || d.Negatives() != 2 {
		t.Fatalf("counts: %d pos, %d neg", d.Positives(), d.Negatives())
	}
	if got := d.ImbalanceRate(); got != 2.0/3 {
		t.Fatalf("ImbalanceRate = %v", got)
	}
	empty := &Dataset{}
	if empty.ImbalanceRate() != 0 {
		t.Fatal("empty dataset imbalance should be 0")
	}
}

func TestDatasetSubset(t *testing.T) {
	d := sampleDataset()
	sub := d.Subset([]int{0, 2})
	if len(sub.Pairs) != 2 || !sub.Pairs[0].Match || sub.Pairs[1].Match {
		t.Fatalf("Subset wrong: %+v", sub.Pairs)
	}
	if sub.Name != d.Name || sub.Schema.NumAttrs() != d.Schema.NumAttrs() {
		t.Fatal("Subset lost metadata")
	}
}

func TestSerializeRecordDefault(t *testing.T) {
	r := Record{Values: []string{"sony camera", "black", "$99"}}
	got := SerializeRecord(r, SerializeOptions{})
	if got != "sony camera, black, $99" {
		t.Fatalf("SerializeRecord = %q", got)
	}
}

func TestSerializeRecordColumnOrder(t *testing.T) {
	r := Record{Values: []string{"a", "b", "c"}}
	got := SerializeRecord(r, SerializeOptions{ColumnOrder: []int{2, 0, 1}})
	if got != "c, a, b" {
		t.Fatalf("shuffled serialization = %q", got)
	}
	// Out-of-range indices are skipped, not panicking.
	got = SerializeRecord(r, SerializeOptions{ColumnOrder: []int{0, 5, 1}})
	if got != "a, b" {
		t.Fatalf("out-of-range order = %q", got)
	}
}

func TestSerializeRecordCustomSeparator(t *testing.T) {
	r := Record{Values: []string{"a", "b"}}
	if got := SerializeRecord(r, SerializeOptions{Separator: " | "}); got != "a | b" {
		t.Fatalf("custom separator = %q", got)
	}
}

func TestSerializePairLayout(t *testing.T) {
	p := Pair{
		Left:  Record{Values: []string{"left val"}},
		Right: Record{Values: []string{"right val"}},
	}
	got := SerializePair(p, SerializeOptions{})
	if !strings.HasPrefix(got, "Entity A: left val") || !strings.Contains(got, "Entity B: right val") {
		t.Fatalf("SerializePair layout: %q", got)
	}
	// No attribute names may leak (cross-dataset restriction 2).
	if strings.Contains(got, "name:") || strings.Contains(got, "title:") {
		t.Fatal("serialization leaked attribute names")
	}
}
