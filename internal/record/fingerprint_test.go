package record

import "testing"

func fpDataset(name, value string) *Dataset {
	return &Dataset{
		Name: name,
		Schema: Schema{
			Names: []string{"title", "price"},
			Types: []AttrType{AttrText, AttrNumeric},
		},
		Pairs: []LabeledPair{
			{
				Pair: Pair{
					Left:  Record{ID: "l1", Values: []string{value, "10"}},
					Right: Record{ID: "r1", Values: []string{value, "10"}},
				},
				Match: true,
			},
			{
				Pair: Pair{
					Left:  Record{ID: "l2", Values: []string{value, "10"}},
					Right: Record{ID: "r2", Values: []string{"other", "99"}},
				},
				Match: false,
			},
		},
	}
}

func TestFingerprintDeterministicAndContentKeyed(t *testing.T) {
	a := fpDataset("DS", "widget")
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint not stable across calls")
	}
	if len(a.Fingerprint()) != 64 {
		t.Fatalf("fingerprint %q is not a sha256 hex digest", a.Fingerprint())
	}
	// A distinct instance with identical content fingerprints identically:
	// the hash is over content, not identity.
	b := fpDataset("DS", "widget")
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical content, different fingerprints")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fpDataset("DS", "widget").Fingerprint()
	cases := map[string]*Dataset{
		"renamed dataset": fpDataset("DS2", "widget"),
		"changed value":   fpDataset("DS", "gadget"),
	}
	flipped := fpDataset("DS", "widget")
	flipped.Pairs[1].Match = true
	cases["flipped label"] = flipped
	retyped := fpDataset("DS", "widget")
	retyped.Schema.Types[1] = AttrShort
	cases["changed attr type"] = retyped
	truncated := fpDataset("DS", "widget")
	truncated.Pairs = truncated.Pairs[:1]
	cases["dropped pair"] = truncated
	for what, d := range cases {
		if d.Fingerprint() == base {
			t.Errorf("%s: fingerprint unchanged", what)
		}
	}
}

func TestFingerprintMemoized(t *testing.T) {
	d := fpDataset("DS", "widget")
	first := d.Fingerprint()
	// Datasets are immutable after generation, so the memo returns the
	// cached value even if the struct is (illegally) mutated afterwards.
	d.Pairs[0].Left.Values[0] = "mutated"
	if d.Fingerprint() != first {
		t.Fatal("fingerprint not memoized by identity")
	}
}

func TestCombineFingerprintsOrderSensitive(t *testing.T) {
	a := fpDataset("A", "x").Fingerprint()
	b := fpDataset("B", "y").Fingerprint()
	ab := CombineFingerprints([]string{a, b})
	ba := CombineFingerprints([]string{b, a})
	if ab == ba {
		t.Fatal("combined fingerprint ignores order")
	}
	if ab != CombineFingerprints([]string{a, b}) {
		t.Fatal("combined fingerprint not deterministic")
	}
	fps := DatasetFingerprints([]*Dataset{fpDataset("A", "x"), fpDataset("B", "y")})
	if len(fps) != 2 || fps[0] != a || fps[1] != b {
		t.Fatalf("DatasetFingerprints = %v", fps)
	}
}
