package record

import (
	"fmt"
	"sync"
	"testing"
)

func TestSerializeCacheMatchesUncached(t *testing.T) {
	cache := NewSerializeCache()
	recs := []Record{
		{ID: "a", Values: []string{"alpha", "beta", "gamma"}},
		{ID: "b", Values: []string{"one", "", "three"}},
		{ID: "c", Values: []string{"x"}},
	}
	optVariants := []SerializeOptions{
		{},
		{ColumnOrder: []int{2, 0, 1}},
		{ColumnOrder: []int{0}},
		{Separator: " | "},
		{ColumnOrder: []int{1, 2, 0}, Separator: "; "},
	}
	for _, r := range recs {
		for _, opts := range optVariants {
			want := SerializeRecord(r, opts)
			withCache := opts
			withCache.Cache = cache
			// Twice: once to populate, once to hit.
			for pass := 0; pass < 2; pass++ {
				if got := SerializeRecord(r, withCache); got != want {
					t.Fatalf("cached serialization %q != uncached %q (rec %s, opts %+v, pass %d)",
						got, want, r.ID, opts, pass)
				}
			}
		}
	}
	if hits, misses := cache.Stats(); hits == 0 || misses == 0 {
		t.Fatalf("expected both hits and misses, got %d/%d", hits, misses)
	}
}

func TestSerializeCacheDistinguishesFieldBoundaries(t *testing.T) {
	cache := NewSerializeCache()
	a := Record{ID: "x", Values: []string{"ab", "c"}}
	b := Record{ID: "x", Values: []string{"a", "bc"}}
	opts := SerializeOptions{Cache: cache}
	sa, sb := SerializeRecord(a, opts), SerializeRecord(b, opts)
	if sa != "ab, c" || sb != "a, bc" {
		t.Fatalf("boundary confusion: %q vs %q", sa, sb)
	}
}

func TestSerializeCacheDerivedRecordSameID(t *testing.T) {
	// Ditto's summarisation keeps the record ID but truncates values; the
	// cache must treat the derived record as a distinct entry.
	cache := NewSerializeCache()
	orig := Record{ID: "r1", Values: []string{"one two three four"}}
	trunc := Record{ID: "r1", Values: []string{"one two"}}
	opts := SerializeOptions{Cache: cache}
	if got := SerializeRecord(orig, opts); got != "one two three four" {
		t.Fatalf("orig = %q", got)
	}
	if got := SerializeRecord(trunc, opts); got != "one two" {
		t.Fatalf("derived record served stale serialization: %q", got)
	}
}

func TestSerializeCacheNilVsEmptyOrder(t *testing.T) {
	cache := NewSerializeCache()
	r := Record{ID: "r", Values: []string{"a", "b"}}
	full := SerializeRecord(r, SerializeOptions{Cache: cache})
	empty := SerializeRecord(r, SerializeOptions{Cache: cache, ColumnOrder: []int{}})
	if full != "a, b" || empty != "" {
		t.Fatalf("nil/empty order confusion: full=%q empty=%q", full, empty)
	}
}

func TestSerializeCacheConcurrent(t *testing.T) {
	cache := NewSerializeCache()
	recs := make([]Record, 64)
	for i := range recs {
		recs[i] = Record{ID: fmt.Sprintf("r%d", i), Values: []string{fmt.Sprintf("value %d", i), "shared"}}
	}
	opts := SerializeOptions{Cache: cache}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 50; pass++ {
				for i, r := range recs {
					want := fmt.Sprintf("value %d, shared", i)
					if got := SerializeRecord(r, opts); got != want {
						t.Errorf("concurrent read got %q, want %q", got, want)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if cache.Len() != len(recs) {
		t.Fatalf("cache has %d entries, want %d", cache.Len(), len(recs))
	}
}

func BenchmarkSerializeRecordUncached(b *testing.B) {
	r := Record{ID: "r", Values: []string{"golden dragon restaurant", "123 main street", "new york", "chinese", "212-555-0188"}}
	opts := SerializeOptions{ColumnOrder: []int{4, 2, 0, 1, 3}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SerializeRecord(r, opts)
	}
}

func BenchmarkSerializeRecordCached(b *testing.B) {
	r := Record{ID: "r", Values: []string{"golden dragon restaurant", "123 main street", "new york", "chinese", "212-555-0188"}}
	opts := SerializeOptions{ColumnOrder: []int{4, 2, 0, 1, 3}, Cache: NewSerializeCache()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SerializeRecord(r, opts)
	}
}
