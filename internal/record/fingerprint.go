package record

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"
)

// fingerprints memoizes Dataset fingerprints by identity. Datasets are
// generated once per process and never mutated after generation, so
// identity-keyed memoization is safe and avoids rehashing ~10k pairs on
// every snapshot-store lookup. A package-level map (rather than a
// sync.Once field) keeps Dataset copyable.
var fingerprints sync.Map // *Dataset -> string

// Fingerprint returns a SHA-256 content hash of the dataset: schema
// (attribute names and types) plus every labeled pair in order. Two
// datasets with identical content fingerprint identically regardless of
// how they were produced, which makes the fingerprint a sound cache-key
// component for trained-matcher snapshots.
func (d *Dataset) Fingerprint() string {
	if v, ok := fingerprints.Load(d); ok {
		return v.(string)
	}
	h := sha256.New()
	var scratch [8]byte
	writeStr := func(s string) {
		binary.LittleEndian.PutUint64(scratch[:], uint64(len(s)))
		h.Write(scratch[:])
		h.Write([]byte(s))
	}
	writeInt := func(n int) {
		binary.LittleEndian.PutUint64(scratch[:], uint64(n))
		h.Write(scratch[:])
	}
	writeRecord := func(r Record) {
		writeStr(r.ID)
		writeInt(len(r.Values))
		for _, v := range r.Values {
			writeStr(v)
		}
	}
	writeStr(d.Name)
	writeInt(len(d.Schema.Names))
	for i, name := range d.Schema.Names {
		writeStr(name)
		writeInt(int(d.Schema.Types[i]))
	}
	writeInt(len(d.Pairs))
	for _, p := range d.Pairs {
		writeRecord(p.Left)
		writeRecord(p.Right)
		if p.Match {
			writeInt(1)
		} else {
			writeInt(0)
		}
	}
	fp := hex.EncodeToString(h.Sum(nil))
	fingerprints.Store(d, fp)
	return fp
}

// DatasetFingerprints returns the fingerprints of ds in order.
func DatasetFingerprints(ds []*Dataset) []string {
	fps := make([]string, len(ds))
	for i, d := range ds {
		fps[i] = d.Fingerprint()
	}
	return fps
}

// CombineFingerprints folds several fingerprints into one, preserving
// order sensitivity; used to fingerprint a whole benchmark for the LODO
// run journal header.
func CombineFingerprints(fps []string) string {
	h := sha256.New()
	var scratch [8]byte
	for _, fp := range fps {
		binary.LittleEndian.PutUint64(scratch[:], uint64(len(fp)))
		h.Write(scratch[:])
		h.Write([]byte(fp))
	}
	return hex.EncodeToString(h.Sum(nil))
}
