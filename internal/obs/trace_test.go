package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestSpanHierarchyAndJSONLRoundTrip(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	if !Enabled(ctx) {
		t.Fatal("context with tracer must report enabled")
	}

	ctx1, cell := Start(ctx, "cell")
	cell.SetStr("matcher", "StringSim")
	cell.SetInt("pairs", 1250)
	cell.SetFloat("usd", 0.125)
	_, train := Start(ctx1, "train")
	time.Sleep(time.Millisecond)
	train.End()
	_, predict := Start(ctx1, "predict")
	predict.End()
	cell.End()

	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	// Records are start-ordered: cell first.
	if recs[0].Name != "cell" || recs[0].Parent != 0 {
		t.Fatalf("first record = %+v, want root cell", recs[0])
	}
	for _, r := range recs[1:] {
		if r.Parent != recs[0].ID {
			t.Fatalf("span %q parent = %d, want %d", r.Name, r.Parent, recs[0].ID)
		}
	}
	if recs[0].Str("matcher") != "StringSim" || recs[0].Int("pairs") != 1250 || recs[0].Float("usd") != 0.125 {
		t.Fatalf("cell attrs = %+v", recs[0].Attrs)
	}
	if err := CheckNesting(recs); err != nil {
		t.Fatal(err)
	}
	if d := Depth(recs); d != 2 {
		t.Fatalf("depth = %d, want 2", d)
	}

	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("round trip lost records: %d", len(back))
	}
	if err := CheckNesting(back); err != nil {
		t.Fatal(err)
	}
	if back[0].Int("pairs") != 1250 || back[0].Float("usd") != 0.125 || back[0].Str("matcher") != "StringSim" {
		t.Fatalf("round-tripped attrs = %+v", back[0].Attrs)
	}
}

func TestDisabledTracingIsInert(t *testing.T) {
	// nil context, background context, nil span, nil stages: all no-ops.
	ctx, span := Start(context.Background(), "x")
	if span != nil || Enabled(ctx) {
		t.Fatal("untraced context must yield a nil span")
	}
	span.SetInt("k", 1)
	span.SetStr("k", "v")
	span.SetFloat("k", 1.5)
	span.End()
	span.Child("y").End()

	st := StartStages(context.Background())
	st.Enter("serialize")
	st.SetInt("serialize", "pairs", 5)
	st.Exit()
	st.End()

	var tr *Tracer
	if tr.Root("x") != nil || tr.Records() != nil || tr.Len() != 0 {
		t.Fatal("nil tracer must be inert")
	}
}

func TestDisabledPathsAllocateNothing(t *testing.T) {
	ctx := context.Background()
	if n := testing.AllocsPerRun(100, func() {
		c, s := Start(ctx, "x")
		_ = c
		s.SetInt("pairs", 1)
		s.End()
		st := StartStages(ctx)
		st.Enter("serialize")
		st.Enter("classify")
		st.End()
		var cnt *Counter
		cnt.Add(1)
		var h *Histogram
		h.Observe(5)
	}); n != 0 {
		t.Fatalf("disabled instrumentation allocates %.1f per op, want 0", n)
	}
}

func TestStagesAccumulate(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, parent := Start(ctx, "predict")
	st := StartStages(ctx)
	for i := 0; i < 3; i++ {
		st.Enter("serialize")
		time.Sleep(200 * time.Microsecond)
		st.Enter("classify")
		time.Sleep(200 * time.Microsecond)
	}
	st.SetInt("serialize", "pairs", 3)
	st.SetInt("classify", "pairs", 3)
	st.End()
	parent.End()

	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want predict + 2 stages", len(recs))
	}
	if err := CheckNesting(recs); err != nil {
		t.Fatal(err)
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	for _, stage := range []string{"serialize", "classify"} {
		r, ok := byName[stage]
		if !ok {
			t.Fatalf("missing %s span", stage)
		}
		if r.Parent != byName["predict"].ID {
			t.Fatalf("%s parent = %d, want predict", stage, r.Parent)
		}
		if r.Int("calls") != 3 || r.Int("pairs") != 3 {
			t.Fatalf("%s attrs = %+v", stage, r.Attrs)
		}
		if r.DurNS < (3 * 200 * time.Microsecond).Nanoseconds() {
			t.Fatalf("%s accumulated %dns, want >= 600µs", stage, r.DurNS)
		}
	}
	// The two accumulated stage durations cannot exceed the parent.
	if byName["serialize"].DurNS+byName["classify"].DurNS > byName["predict"].DurNS {
		t.Fatal("stage durations exceed their parent")
	}
}

func TestCheckNestingCatchesViolations(t *testing.T) {
	ok := []SpanRecord{
		{ID: 1, Name: "a", StartNS: 0, DurNS: 100},
		{ID: 2, Parent: 1, Name: "b", StartNS: 10, DurNS: 50},
	}
	if err := CheckNesting(ok); err != nil {
		t.Fatal(err)
	}
	bad := [][]SpanRecord{
		{{ID: 1, Name: "a", StartNS: 0, DurNS: 100}, {ID: 2, Parent: 3, Name: "b", StartNS: 0, DurNS: 1}},   // missing parent
		{{ID: 1, Name: "a", StartNS: 0, DurNS: 100}, {ID: 2, Parent: 1, Name: "b", StartNS: 90, DurNS: 20}}, // escapes window
		{{ID: 1, Name: "a", StartNS: 0, DurNS: 1}, {ID: 1, Name: "a", StartNS: 0, DurNS: 1}},                // duplicate id
		{{ID: 0, Name: "a", StartNS: 0, DurNS: 1}},                                                          // zero id
		{{ID: 1, Name: "a", StartNS: 0, DurNS: -5}},                                                         // negative duration
	}
	for i, recs := range bad {
		if err := CheckNesting(recs); err == nil {
			t.Fatalf("case %d: want error, got nil", i)
		}
	}
}

func TestRootSpans(t *testing.T) {
	tr := NewTracer()
	batch := tr.Root("batch")
	batch.SetInt("requests", 2)
	score := batch.Child("score")
	score.End()
	batch.End()
	recs := tr.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if err := CheckNesting(recs); err != nil {
		t.Fatal(err)
	}
	if recs[0].Name != "batch" || recs[0].Parent != 0 {
		t.Fatalf("root record = %+v", recs[0])
	}
	if recs[1].Name != "score" || recs[1].Parent != recs[0].ID {
		t.Fatalf("child record = %+v", recs[1])
	}
}
