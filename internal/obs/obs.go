// Package obs is the study's shared observability substrate: a lock-free
// metrics registry with Prometheus-text, JSON and expvar exposition, and a
// low-overhead span tracer with a JSONL sink. Both the offline
// leave-one-dataset-out study (internal/eval) and the online serving
// pipeline (internal/serve) record into it, so per-stage time, pairs,
// tokens and Table-6 dollars can be attributed to the code that produced
// them instead of being folded into one end-to-end wall-clock number.
//
// The package has two design rules:
//
//   - Disabled instrumentation costs (almost) nothing. Every handle type —
//     *Counter, *Gauge, *Histogram, *Span, *Stages — treats a nil receiver
//     as "instrumentation off": methods return immediately, allocate
//     nothing, and take no locks. Hot kernels therefore call through
//     unconditionally; whether anything is recorded is decided once, where
//     the handle (or the tracing context) is created. The zero-alloc
//     guarantee is pinned by bench_obs_test.go and TestObsDisabledZeroAlloc.
//
//   - Recording never blocks recording. Counters, gauges and histogram
//     buckets are single atomic adds; finished spans append to one of a
//     fixed set of mutex-sharded buffers keyed by span ID, so concurrent
//     goroutines almost never contend. Aggregation (quantiles, Prometheus
//     text, JSONL) happens only at read time.
//
// Tracing is context-carried: WithTracer installs a Tracer into a
// context, Start opens a span under the context's current span, and code
// that never sees a traced context runs the nil fast path. The Stages
// helper accumulates interleaved per-item stage timings (serialize vs
// classify inside one loop) into one synthetic span per stage.
package obs

import (
	"context"
	"time"
)

// ctxKey carries the current *Span (and through it the Tracer) in a
// context. An empty-struct key makes the disabled-path Value lookup
// allocation-free.
type ctxKey struct{}

// WithTracer returns a context whose descendants record spans into t.
// Spans started under the returned context are roots (parent 0).
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, &Span{t: t})
}

// Enabled reports whether ctx carries a tracer.
func Enabled(ctx context.Context) bool { return spanFrom(ctx) != nil }

// spanFrom returns the context's current span, or nil when ctx is nil or
// carries no tracer.
func spanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Start opens a span named name under ctx's current span and returns a
// context carrying the new span. When ctx carries no tracer (or is nil)
// it returns (ctx, nil) without allocating; the nil *Span is safe to use.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := spanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.Child(name)
	return context.WithValue(ctx, ctxKey{}, s), s
}

// WithSpan returns a context whose Start calls open children of s — the
// bridge for code that created a span outside any context (Tracer.Root on
// a worker goroutine) and hands it to context-carried instrumentation.
// With a nil span it returns ctx unchanged (still untraced).
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// now returns the time since the tracer's epoch.
func (t *Tracer) now() time.Duration { return time.Since(t.epoch) }
