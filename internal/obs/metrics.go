package obs

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// log2Buckets is the bucket count of log2 histograms: bucket k counts
// values v with bits.Len64(v) == k, i.e. v in [2^(k-1), 2^k). 40 buckets
// span 0 to ~2^39 — sub-microsecond to ~6 days when observing
// microseconds.
const log2Buckets = 40

// Counter is a monotonically increasing metric. A nil *Counter is a valid
// disabled counter: Add/Inc return immediately.
type Counter struct {
	v          atomic.Int64
	name, help string
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 for a nil counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. A nil *Gauge is a valid
// disabled gauge.
type Gauge struct {
	v          atomic.Int64
	name, help string
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Load returns the current value (0 for a nil gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution with single-atomic-add
// observation. Two bucket layouts exist: log2 (bucket k counts values in
// [2^(k-1), 2^k), for latencies spanning orders of magnitude) and linear
// unit-width (bucket k counts values equal to k, clamped to the last
// bucket — exact counts for small discrete quantities like batch sizes).
// A nil *Histogram is a valid disabled histogram.
type Histogram struct {
	buckets    []atomic.Int64
	sum        atomic.Int64
	linear     bool
	name, help string
}

// Observe records one value (negative values count as 0).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	var k int
	if h.linear {
		k = int(v)
	} else {
		k = bits.Len64(uint64(v))
	}
	if k >= len(h.buckets) {
		k = len(h.buckets) - 1
	}
	h.buckets[k].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in microseconds — the unit every
// *_us histogram in the repository uses.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Microseconds())
}

// ObserveSince records the microseconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Microseconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var total int64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	return total
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the mean observed value, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// BucketCounts returns a snapshot of the per-bucket counts (not
// cumulative). For linear histograms index k is the count of value k.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	return h.BucketCountsInto(make([]int64, 0, len(h.buckets)))
}

// BucketCountsInto appends a snapshot of the per-bucket counts to dst
// and returns it, allocating only when dst lacks capacity. Periodic
// samplers (the SLO engine) call this every tick with a reused buffer.
func (h *Histogram) BucketCountsInto(dst []int64) []int64 {
	if h == nil {
		return dst
	}
	for i := range h.buckets {
		dst = append(dst, h.buckets[i].Load())
	}
	return dst
}

// NumBuckets returns the bucket count of the histogram's layout (0 for
// a nil histogram), sizing reusable BucketCountsInto buffers.
func (h *Histogram) NumBuckets() int {
	if h == nil {
		return 0
	}
	return len(h.buckets)
}

// Quantile estimates the value at quantile q in [0, 1] using the
// nearest-rank definition (rank floor(q*n)+1, clamped to n). Linear
// histograms answer exactly (buckets hold single values). Log2
// histograms place the rank inside its bucket by linear interpolation
// between the bucket bounds, which tightens the previous upper-bound
// estimate from a 2x worst case to half a bucket.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return quantileOf(h.BucketCounts(), q, h.linear)
}

// QuantileLog2 estimates quantile q over a raw log2 bucket-count slice,
// using the same nearest-rank + interpolation rules as
// Histogram.Quantile. It exists for consumers that window a histogram
// by differencing two BucketCounts snapshots (the SLO engine) and need
// quantiles of the delta distribution. Allocation-free.
func QuantileLog2(counts []int64, q float64) float64 {
	return quantileOf(counts, q, false)
}

func quantileOf(counts []int64, q float64, linear bool) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total)) + 1
	if rank > total {
		rank = total
	}
	var seen int64
	for k, c := range counts {
		if c == 0 {
			continue
		}
		if seen+c >= rank {
			if linear {
				return float64(k)
			}
			lo, hi := log2BucketBounds(k)
			// Midpoint convention: the i-th of c observations in a bucket
			// sits at fraction (i - 0.5)/c, so a full bucket never reports
			// its exclusive upper bound.
			frac := (float64(rank-seen) - 0.5) / float64(c)
			return lo + (hi-lo)*frac
		}
		seen += c
	}
	return 0 // unreachable: total > 0 places the rank in some bucket
}

// log2BucketBounds returns the value range [lo, hi) of log2 bucket k.
func log2BucketBounds(k int) (lo, hi float64) {
	if k == 0 {
		return 0, 1
	}
	return float64(uint64(1) << (k - 1)), float64(uint64(1) << k)
}

// upperBound returns the inclusive upper bound of bucket k, used as the
// Prometheus `le` label.
func (h *Histogram) upperBound(k int) int64 {
	if h.linear {
		return int64(k)
	}
	if k == 0 {
		return 0
	}
	return int64(uint64(1)<<k) - 1
}

// Label is one constant name="value" pair attached to every series of a
// Registry.
type Label struct{ Key, Value string }

// gaugeFunc is a read-at-exposition metric backed by a callback.
type gaugeFunc struct {
	name, help, typ string // typ: "gauge" or "counter"
	f               func() float64
}

// Registry is a named collection of metrics with deterministic
// (registration-order) exposition. Registration takes a lock; recording
// into registered handles is lock-free. A nil *Registry hands out nil
// handles, so a whole subsystem can be instrumented-but-disabled by
// passing a nil registry.
type Registry struct {
	mu     sync.Mutex
	labels []Label
	order  []any // *Counter | *Gauge | *Histogram | gaugeFunc, in registration order
	byName map[string]any
}

// NewRegistry returns an empty registry whose series all carry the given
// constant labels.
func NewRegistry(labels ...Label) *Registry {
	return &Registry{labels: labels, byName: make(map[string]any)}
}

// register stores m under name, or returns the existing metric of the
// same name. Re-registering a name as a different kind panics: that is a
// programming error, and silently returning a mismatched handle would
// corrupt whoever holds it.
func (r *Registry) register(name string, m any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[name]; ok {
		if fmt.Sprintf("%T", prev) != fmt.Sprintf("%T", m) {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different kind", name))
		}
		return prev
	}
	r.byName[name] = m
	r.order = append(r.order, m)
	return m
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid disabled counter) on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, &Counter{name: name, help: help}).(*Counter)
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, &Gauge{name: name, help: help}).(*Gauge)
}

// GaugeFunc registers a gauge whose value is read from f at exposition
// time. f must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	if r == nil {
		return
	}
	r.register(name, gaugeFunc{name: name, help: help, typ: "gauge", f: f})
}

// CounterFunc registers a monotonic metric whose value is read from f at
// exposition time (e.g. a cache's internal hit counter).
func (r *Registry) CounterFunc(name, help string, f func() float64) {
	if r == nil {
		return
	}
	r.register(name, gaugeFunc{name: name, help: help, typ: "counter", f: f})
}

// Log2Histogram returns the named log2-bucket histogram, creating it on
// first use.
func (r *Registry) Log2Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, &Histogram{
		name: name, help: help, buckets: make([]atomic.Int64, log2Buckets),
	}).(*Histogram)
}

// LinearHistogram returns the named unit-width histogram over [0, max]
// (values above max clamp into the last bucket), creating it on first
// use.
func (r *Registry) LinearHistogram(name, help string, max int) *Histogram {
	if r == nil {
		return nil
	}
	if max < 1 {
		max = 1
	}
	return r.register(name, &Histogram{
		name: name, help: help, linear: true, buckets: make([]atomic.Int64, max+1),
	}).(*Histogram)
}

// metrics snapshots the ordered metric list under the lock, so exposition
// never holds the lock while formatting.
func (r *Registry) metrics() (labels []Label, order []any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.labels, append([]any(nil), r.order...)
}
