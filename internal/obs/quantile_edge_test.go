package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// Edge cases of the quantile estimator: empty histograms, everything in
// one bucket, everything clamped into the last bucket, and the exact
// boundary quantiles q=0 and q=1 (plus out-of-range q).

func TestQuantileEmptyHistogram(t *testing.T) {
	r := NewRegistry()
	for _, h := range []*Histogram{
		r.Log2Histogram("empty_us", ""),
		r.LinearHistogram("empty_n", "", 8),
	} {
		for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
			if v := h.Quantile(q); v != 0 {
				t.Fatalf("%s: Quantile(%v) = %v on empty histogram, want 0", h.name, q, v)
			}
		}
	}
	if v := QuantileLog2(nil, 0.5); v != 0 {
		t.Fatalf("QuantileLog2(nil) = %v, want 0", v)
	}
	if v := QuantileLog2(make([]int64, log2Buckets), 0.99); v != 0 {
		t.Fatalf("QuantileLog2(zero counts) = %v, want 0", v)
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Log2Histogram("one_bucket_us", "")
	for i := 0; i < 100; i++ {
		h.Observe(100) // bucket [64, 128)
	}
	prev := 0.0
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.99, 1} {
		v := h.Quantile(q)
		if v < 64 || v >= 128 {
			t.Fatalf("Quantile(%v) = %v, want inside [64, 128)", q, v)
		}
		if v < prev {
			t.Fatalf("Quantile(%v) = %v < Quantile at lower q (%v): not monotone", q, v, prev)
		}
		prev = v
	}
	// Midpoint convention: even q=1 stays strictly below the exclusive
	// upper bound, and q=0 strictly above the lower one.
	if v := h.Quantile(1); v >= 128 {
		t.Fatalf("Quantile(1) = %v, want < 128", v)
	}
	if v := h.Quantile(0); v <= 64 {
		t.Fatalf("Quantile(0) = %v, want > 64", v)
	}
}

func TestQuantileAllInLastBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Log2Histogram("huge_us", "")
	// 2^62 exceeds the 40-bucket layout; observations clamp into the
	// final bucket [2^38, 2^39).
	for i := 0; i < 10; i++ {
		h.Observe(1 << 62)
	}
	lo, hi := log2BucketBounds(log2Buckets - 1)
	for _, q := range []float64{0, 0.5, 1} {
		v := h.Quantile(q)
		if v < lo || v >= hi {
			t.Fatalf("Quantile(%v) = %v, want inside last bucket [%v, %v)", q, v, lo, hi)
		}
	}
	// Linear histograms clamp the same way but answer exactly.
	lh := r.LinearHistogram("huge_n", "", 8)
	lh.Observe(1000)
	if v := lh.Quantile(0.5); v != 8 {
		t.Fatalf("linear clamped Quantile(0.5) = %v, want 8", v)
	}
}

func TestQuantileExactBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.LinearHistogram("ranks_n", "", 16)
	for v := int64(1); v <= 10; v++ {
		h.Observe(v)
	}
	// Nearest-rank on exact single-value buckets: rank floor(q*10)+1.
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {-0.5, 1}, // clamp below
		{0.09, 1}, {0.1, 2}, {0.5, 6}, {0.89, 9}, {0.9, 10},
		{1, 10}, {1.5, 10}, // clamp above
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileLog2MatchesHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Log2Histogram("match_us", "")
	for _, v := range []int64{0, 1, 3, 7, 100, 100, 5000, 1 << 20} {
		h.Observe(v)
	}
	counts := h.BucketCounts()
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 0.99, 1} {
		if a, b := h.Quantile(q), QuantileLog2(counts, q); a != b {
			t.Fatalf("Quantile(%v) = %v but QuantileLog2 = %v", q, a, b)
		}
	}
	// BucketCountsInto into a reused buffer matches BucketCounts.
	buf := make([]int64, 0, h.NumBuckets())
	buf = h.BucketCountsInto(buf)
	if len(buf) != len(counts) {
		t.Fatalf("BucketCountsInto len = %d, want %d", len(buf), len(counts))
	}
	for i := range buf {
		if buf[i] != counts[i] {
			t.Fatalf("BucketCountsInto[%d] = %d, want %d", i, buf[i], counts[i])
		}
	}
}

// Zero-valued scalars must serialize an explicit value field, and
// histograms an explicit count/sum — consumers (emwatch, dashboards)
// distinguish "zero" from "absent". Pins the MetricSnapshot pointer
// fields.
func TestSnapshotJSONZeroValuesExplicit(t *testing.T) {
	r := NewRegistry()
	r.Counter("zero_total", "")
	r.Gauge("zero_depth", "")
	r.Log2Histogram("zero_us", "")
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{
		`"name":"zero_total","type":"counter","value":0`,
		`"name":"zero_depth","type":"gauge","value":0`,
		`"name":"zero_us","type":"histogram","count":0,"sum":0`,
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("snapshot JSON missing %q:\n%s", want, s)
		}
	}
	// Scalars carry no histogram fields and histograms no scalar value.
	var snaps []MetricSnapshot
	if err := json.Unmarshal(b, &snaps); err != nil {
		t.Fatal(err)
	}
	if snaps[0].Count != nil || snaps[0].Sum != nil {
		t.Fatalf("counter snapshot has histogram fields: %+v", snaps[0])
	}
	if snaps[2].Value != nil {
		t.Fatalf("histogram snapshot has scalar value: %+v", snaps[2])
	}
	if snaps[2].Count == nil || *snaps[2].Count != 0 {
		t.Fatalf("histogram count not explicit zero: %+v", snaps[2])
	}
}
