package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// traceShards is the number of finished-span buffers a Tracer stripes
// appends across. Spans land in the shard of their ID, so concurrent
// goroutines (which hold distinct spans) almost never contend on a lock.
const traceShards = 16

// Tracer collects finished spans. Create with NewTracer, thread through
// code with WithTracer/Start, and read back with Records or WriteJSONL.
// All methods are safe for concurrent use.
type Tracer struct {
	epoch  time.Time
	nextID atomic.Uint64
	shards [traceShards]traceShard
}

type traceShard struct {
	mu   sync.Mutex
	recs []SpanRecord
	// pad spaces the shards across cache lines so neighbouring locks do
	// not false-share.
	_ [40]byte
}

// NewTracer returns a tracer whose span timestamps count from now.
func NewTracer() *Tracer { return &Tracer{epoch: time.Now()} }

// Span is one in-flight traced operation. A nil *Span is a valid
// disabled span: every method returns immediately without allocating.
// A Span is owned by one goroutine at a time; hand-off between
// goroutines must happen-before the receiver touches it.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Duration
	attrs  []Attr
}

// Root opens a parentless span directly on the tracer — for code that
// has no traced context at hand, like pool workers. Returns nil on a nil
// tracer.
func (t *Tracer) Root(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, id: t.nextID.Add(1), name: name, start: t.now()}
}

// Child opens a span under s. Returns nil (disabled) when s is nil.
// Children of the synthetic context root installed by WithTracer (id 0)
// come out as root spans.
func (s *Span) Child(name string) *Span {
	if s == nil || s.t == nil {
		return nil
	}
	return &Span{t: s.t, id: s.t.nextID.Add(1), parent: s.id, name: name, start: s.t.now()}
}

// SetStr attaches a string attribute. Call before End.
func (s *Span) SetStr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Str: value, kind: attrStr})
}

// SetInt attaches an integer attribute. Call before End.
func (s *Span) SetInt(key string, value int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Int: value, kind: attrInt})
}

// SetFloat attaches a float attribute. Call before End.
func (s *Span) SetFloat(key string, value float64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Float: value, kind: attrFloat})
}

// End finishes the span and hands it to the tracer. Call exactly once;
// a nil span ends for free.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.t.now()
	rec := SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartNS: s.start.Nanoseconds(),
		DurNS:   (end - s.start).Nanoseconds(),
	}
	if len(s.attrs) > 0 {
		rec.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			rec.Attrs[a.Key] = a.value()
		}
	}
	s.t.record(rec)
}

// Attr is one typed span attribute.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	Float float64
	kind  uint8
}

const (
	attrStr = iota
	attrInt
	attrFloat
)

// value returns the attribute's dynamic value for JSON encoding.
func (a Attr) value() any {
	switch a.kind {
	case attrInt:
		return a.Int
	case attrFloat:
		return a.Float
	default:
		return a.Str
	}
}

// SpanRecord is one finished span — the JSONL wire format and the fold
// input of the run-report generator. Attrs decoded from JSON hold
// float64 for every number; use the Int/Float/Str accessors.
type SpanRecord struct {
	ID      uint64         `json:"id"`
	Parent  uint64         `json:"parent,omitempty"`
	Name    string         `json:"name"`
	StartNS int64          `json:"start_ns"`
	DurNS   int64          `json:"dur_ns"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// EndNS returns the span's end timestamp.
func (r SpanRecord) EndNS() int64 { return r.StartNS + r.DurNS }

// Str returns the named string attribute, or "".
func (r SpanRecord) Str(key string) string {
	s, _ := r.Attrs[key].(string)
	return s
}

// Int returns the named numeric attribute truncated to int64, or 0.
func (r SpanRecord) Int(key string) int64 {
	switch v := r.Attrs[key].(type) {
	case int64:
		return v
	case float64:
		return int64(v)
	}
	return 0
}

// Float returns the named numeric attribute, or 0.
func (r SpanRecord) Float(key string) float64 {
	switch v := r.Attrs[key].(type) {
	case int64:
		return float64(v)
	case float64:
		return v
	}
	return 0
}

// record appends a finished span to its ID's shard.
func (t *Tracer) record(rec SpanRecord) {
	sh := &t.shards[rec.ID%traceShards]
	sh.mu.Lock()
	sh.recs = append(sh.recs, rec)
	sh.mu.Unlock()
}

// Len returns the number of finished spans recorded so far.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.recs)
		sh.mu.Unlock()
	}
	return n
}

// Records returns every finished span, ordered by start time (ties by
// ID). Safe to call while spans are still being recorded; it snapshots.
func (t *Tracer) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	var out []SpanRecord
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		out = append(out, sh.recs...)
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartNS != out[j].StartNS {
			return out[i].StartNS < out[j].StartNS
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// WriteJSONL writes every finished span as one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range t.Records() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace back into span records, skipping blank
// lines.
func ReadJSONL(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// CheckNesting validates the structural invariants of a trace: span IDs
// are unique, every non-zero parent exists, and each child's [start, end)
// window lies inside its parent's. Timestamps are nanoseconds from one
// monotonic clock, so the containment check is exact.
func CheckNesting(recs []SpanRecord) error {
	byID := make(map[uint64]SpanRecord, len(recs))
	for _, r := range recs {
		if r.ID == 0 {
			return fmt.Errorf("obs: span %q has id 0", r.Name)
		}
		if _, dup := byID[r.ID]; dup {
			return fmt.Errorf("obs: duplicate span id %d (%q)", r.ID, r.Name)
		}
		if r.DurNS < 0 {
			return fmt.Errorf("obs: span %d (%q) has negative duration %d", r.ID, r.Name, r.DurNS)
		}
		byID[r.ID] = r
	}
	for _, r := range recs {
		if r.Parent == 0 {
			continue
		}
		p, ok := byID[r.Parent]
		if !ok {
			return fmt.Errorf("obs: span %d (%q) references missing parent %d", r.ID, r.Name, r.Parent)
		}
		if r.StartNS < p.StartNS || r.EndNS() > p.EndNS() {
			return fmt.Errorf("obs: span %d (%q) [%d, %d) escapes parent %d (%q) [%d, %d)",
				r.ID, r.Name, r.StartNS, r.EndNS(), p.ID, p.Name, p.StartNS, p.EndNS())
		}
	}
	return nil
}

// Depth returns the maximum parent-chain depth of a trace (roots are
// depth 1), for trace sanity reporting.
func Depth(recs []SpanRecord) int {
	byID := make(map[uint64]SpanRecord, len(recs))
	for _, r := range recs {
		byID[r.ID] = r
	}
	max := 0
	for _, r := range recs {
		d := 1
		for r.Parent != 0 {
			p, ok := byID[r.Parent]
			if !ok {
				break
			}
			d++
			r = p
		}
		if d > max {
			max = d
		}
	}
	return max
}

// Stages accumulates interleaved per-item stage timings into one
// synthetic span per stage. A per-pair loop that serialises then
// classifies calls Enter("serialize") and Enter("classify") each
// iteration; End emits a "serialize" span and a "classify" span whose
// durations are the summed time spent in each stage, parented under the
// context's current span. A nil *Stages (from an untraced context) makes
// every method a no-allocation no-op, so hot loops call unconditionally.
type Stages struct {
	t      *Tracer
	parent uint64
	cur    int
	stamp  time.Duration
	stages []stageAcc
}

type stageAcc struct {
	name  string
	first time.Duration
	acc   time.Duration
	calls int64
	attrs []Attr
}

// StartStages returns a stage accumulator recording under ctx's current
// span, or nil when ctx carries no tracer.
func StartStages(ctx context.Context) *Stages {
	parent := spanFrom(ctx)
	if parent == nil {
		return nil
	}
	return &Stages{t: parent.t, parent: parent.id, cur: -1}
}

// Enter switches the accumulator to the named stage, closing the time
// slice of the previous one. Stage names are expected to be few; lookup
// is linear.
func (st *Stages) Enter(name string) {
	if st == nil {
		return
	}
	now := st.t.now()
	if st.cur >= 0 {
		st.stages[st.cur].acc += now - st.stamp
	}
	idx := -1
	for i := range st.stages {
		if st.stages[i].name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		st.stages = append(st.stages, stageAcc{name: name, first: now})
		idx = len(st.stages) - 1
	}
	st.stages[idx].calls++
	st.cur, st.stamp = idx, now
}

// Exit closes the current stage's time slice without entering another —
// for work between stages that should not be attributed to any of them.
func (st *Stages) Exit() {
	if st == nil {
		return
	}
	if st.cur >= 0 {
		st.stages[st.cur].acc += st.t.now() - st.stamp
		st.cur = -1
	}
}

// SetInt attaches an integer attribute to the named stage's emitted
// span (creating the stage if it has not been entered yet).
func (st *Stages) SetInt(stage, key string, value int64) {
	if st == nil {
		return
	}
	e := st.stage(stage)
	e.attrs = append(e.attrs, Attr{Key: key, Int: value, kind: attrInt})
}

// SetFloat attaches a float attribute to the named stage's emitted span.
func (st *Stages) SetFloat(stage, key string, value float64) {
	if st == nil {
		return
	}
	e := st.stage(stage)
	e.attrs = append(e.attrs, Attr{Key: key, Float: value, kind: attrFloat})
}

func (st *Stages) stage(name string) *stageAcc {
	for i := range st.stages {
		if st.stages[i].name == name {
			return &st.stages[i]
		}
	}
	st.stages = append(st.stages, stageAcc{name: name, first: st.t.now()})
	return &st.stages[len(st.stages)-1]
}

// End closes the current stage and emits one span per stage seen. Each
// span starts at the stage's first Enter, lasts the accumulated time,
// and carries a "calls" attribute counting Enter calls plus any
// SetInt/SetFloat attributes.
func (st *Stages) End() {
	if st == nil {
		return
	}
	st.Exit()
	for i := range st.stages {
		e := &st.stages[i]
		rec := SpanRecord{
			ID:      st.t.nextID.Add(1),
			Parent:  st.parent,
			Name:    e.name,
			StartNS: e.first.Nanoseconds(),
			DurNS:   e.acc.Nanoseconds(),
		}
		rec.Attrs = make(map[string]any, len(e.attrs)+1)
		rec.Attrs["calls"] = e.calls
		for _, a := range e.attrs {
			rec.Attrs[a.Key] = a.value()
		}
		st.t.record(rec)
	}
	st.stages = st.stages[:0]
}
