package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// The concurrency gate of the registry and the span recorder: hammer
// every primitive from many goroutines and assert exact totals. Run
// under -race via `make verify-parallel`.

func TestConcurrentCountersExactTotals(t *testing.T) {
	const goroutines, perG = 16, 10_000
	r := NewRegistry()
	c := r.Counter("hits_total", "")
	g := r.Gauge("delta", "")
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := g.Load(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
}

func TestConcurrentHistogramExactTotals(t *testing.T) {
	const goroutines, perG = 16, 10_000
	r := NewRegistry()
	h := r.Log2Histogram("lat_us", "")
	lin := r.LinearHistogram("batch", "", 32)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				h.Observe(int64(i*perG+j) % 1000)
				lin.Observe(int64(j % 33))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("log2 count = %d, want %d", got, goroutines*perG)
	}
	if got := lin.Count(); got != goroutines*perG {
		t.Fatalf("linear count = %d, want %d", got, goroutines*perG)
	}
	// Concurrent readers while writers are still active must not race.
	var wg2 sync.WaitGroup
	stop := make(chan struct{})
	wg2.Add(1)
	go func() {
		defer wg2.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Quantile(0.95)
				_ = r.Snapshot()
			}
		}
	}()
	for j := 0; j < 1000; j++ {
		h.Observe(int64(j))
	}
	close(stop)
	wg2.Wait()
}

func TestConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	handles := make([]*Counter, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Everyone registers the same name plus a private one.
			handles[i] = r.Counter("shared_total", "")
			r.Counter(fmt.Sprintf("private_%d_total", i), "").Inc()
			handles[i].Inc()
		}()
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if handles[i] != handles[0] {
			t.Fatal("concurrent registration split the shared counter")
		}
	}
	if got := handles[0].Load(); got != goroutines {
		t.Fatalf("shared counter = %d, want %d", got, goroutines)
	}
	if got := len(r.Snapshot()); got != goroutines+1 {
		t.Fatalf("registry holds %d metrics, want %d", got, goroutines+1)
	}
}

func TestConcurrentSpanRecording(t *testing.T) {
	const goroutines, perG = 16, 2_000
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				cctx, cell := Start(ctx, "cell")
				_, child := Start(cctx, "predict")
				child.SetInt("pairs", 1)
				child.End()
				st := StartStages(cctx)
				st.Enter("serialize")
				st.Enter("classify")
				st.End()
				cell.End()
			}
		}()
	}
	wg.Wait()
	recs := tr.Records()
	want := goroutines * perG * 4 // cell + predict + 2 stage spans
	if len(recs) != want {
		t.Fatalf("recorded %d spans, want %d", len(recs), want)
	}
	if err := CheckNesting(recs); err != nil {
		t.Fatal(err)
	}
}
