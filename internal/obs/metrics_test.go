package obs

import (
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	// Get-or-create returns the same handle.
	if r.Counter("requests_total", "requests") != c {
		t.Fatal("re-registering a counter returned a different handle")
	}
}

func TestNilHandlesAreDisabled(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		h *Histogram
		r *Registry
	)
	c.Add(1)
	c.Inc()
	g.Set(3)
	h.Observe(9)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if r.Counter("x", "") != nil || r.Log2Histogram("y", "") != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be empty")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestMismatchedKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x", "")
	r.Gauge("x", "")
}

func TestLog2HistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Log2Histogram("lat_us", "latency")
	// 100 observations of 100µs: all land in bucket [64, 128).
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		v := h.Quantile(q)
		if v < 64 || v >= 128 {
			t.Fatalf("q%.0f = %v, want within bucket [64, 128)", q*100, v)
		}
	}
	if h.Count() != 100 || h.Sum() != 10000 {
		t.Fatalf("count/sum = %d/%d, want 100/10000", h.Count(), h.Sum())
	}
	if m := h.Mean(); m != 100 {
		t.Fatalf("mean = %v, want 100", m)
	}
	// Interpolation separates ranks within a spread distribution: p99 of
	// 99 small + 1 huge observation must land in the huge bucket.
	h2 := r.Log2Histogram("lat2_us", "")
	for i := 0; i < 99; i++ {
		h2.Observe(1)
	}
	h2.Observe(1 << 20)
	if p99 := h2.Quantile(0.99); p99 < 1<<19 {
		t.Fatalf("p99 = %v, want in the 2^20 bucket", p99)
	}
	if p50 := h2.Quantile(0.5); p50 >= 2 {
		t.Fatalf("p50 = %v, want in the [1,2) bucket", p50)
	}
}

func TestLinearHistogramExactCounts(t *testing.T) {
	r := NewRegistry()
	h := r.LinearHistogram("batch_pairs", "batch sizes", 8)
	for i := 0; i < 3; i++ {
		h.Observe(2)
	}
	h.Observe(5)
	h.Observe(100) // clamps into the last bucket
	counts := h.BucketCounts()
	if counts[2] != 3 || counts[5] != 1 || counts[8] != 1 {
		t.Fatalf("bucket counts = %v", counts)
	}
	if q := h.Quantile(0.5); q != 2 {
		t.Fatalf("p50 = %v, want exactly 2", q)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry(Label{Key: "matcher", Value: "StringSim"})
	r.Counter("emserve_requests_total", "admitted requests").Add(42)
	r.GaugeFunc("emserve_queue_depth", "queued requests", func() float64 { return 3 })
	r.CounterFunc("emserve_cost_usd_total", "dollars", func() float64 { return 1.25 })
	h := r.Log2Histogram("emserve_latency_us", "request latency")
	h.Observe(3)
	h.Observe(100)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`# TYPE emserve_requests_total counter`,
		`emserve_requests_total{matcher="StringSim"} 42`,
		`emserve_queue_depth{matcher="StringSim"} 3`,
		`# TYPE emserve_cost_usd_total counter`,
		`emserve_cost_usd_total{matcher="StringSim"} 1.25`,
		`# TYPE emserve_latency_us histogram`,
		`emserve_latency_us_bucket{matcher="StringSim",le="3"} 1`,
		`emserve_latency_us_bucket{matcher="StringSim",le="127"} 2`,
		`emserve_latency_us_bucket{matcher="StringSim",le="+Inf"} 2`,
		`emserve_latency_us_sum{matcher="StringSim"} 103`,
		`emserve_latency_us_count{matcher="StringSim"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(7)
	h := r.Log2Histogram("b_us", "")
	h.Observe(10)
	snaps := r.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("got %d snapshots, want 2", len(snaps))
	}
	if snaps[0].Name != "a_total" || snaps[0].ScalarValue() != 7 || snaps[0].Type != "counter" {
		t.Fatalf("counter snapshot = %+v", snaps[0])
	}
	if snaps[1].HistCount() != 1 || snaps[1].Sum == nil || *snaps[1].Sum != 10 || len(snaps[1].Buckets) != 1 {
		t.Fatalf("histogram snapshot = %+v", snaps[1])
	}
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"a_total"`) {
		t.Fatalf("JSON missing metric name: %s", b.String())
	}
}

func TestPublishExpvarRebinds(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("x_total", "").Add(1)
	PublishExpvar("obs_test_rebind", r1)
	r2 := NewRegistry()
	r2.Counter("x_total", "").Add(2)
	// Must not panic on duplicate publish, and must read the new registry.
	PublishExpvar("obs_test_rebind", r2)
	expvarMu.Lock()
	got := expvarRegistries["obs_test_rebind"]
	expvarMu.Unlock()
	if got != r2 {
		t.Fatal("expvar name not rebound to the newest registry")
	}
}
