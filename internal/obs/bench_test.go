package obs

import (
	"context"
	"testing"
)

// Disabled-path benchmarks: nil handles must cost a branch, not an
// allocation. These are the numbers behind the "instrumentation is free
// when off" contract (BENCH_pr4.json).

func BenchmarkObsDisabledCounterAdd(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkObsDisabledHistogramObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkObsDisabledSpanStart(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, span := Start(ctx, "bench")
		span.SetInt("i", int64(i))
		span.End()
	}
}

// Enabled-path benchmarks price what recording actually costs.

func BenchmarkObsEnabledCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkObsEnabledHistogramObserve(b *testing.B) {
	h := NewRegistry().Log2Histogram("bench_us", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkObsEnabledSpanRecord(b *testing.B) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, span := Start(ctx, "bench")
		span.SetInt("i", int64(i))
		span.End()
	}
}
