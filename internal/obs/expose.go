package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// This file is the registry's read side: Prometheus text exposition,
// JSON snapshots, an http.Handler, and expvar publishing. All of it
// renders from atomic loads; nothing here blocks the hot recording path.

// MetricSnapshot is one metric's point-in-time JSON view. Value is set
// (non-nil) exactly for scalar kinds (counter/gauge), Count and Sum
// exactly for histograms — as pointers, so a zero-valued counter still
// serializes an explicit "value": 0 instead of omitting the field
// (consumers must be able to tell "zero" from "absent").
type MetricSnapshot struct {
	Name string `json:"name"`
	Type string `json:"type"` // counter | gauge | histogram
	Help string `json:"help,omitempty"`
	// Value is the scalar value of counters and gauges.
	Value *float64 `json:"value,omitempty"`
	// Histogram fields.
	Count   *int64        `json:"count,omitempty"`
	Sum     *int64        `json:"sum,omitempty"`
	Mean    float64       `json:"mean,omitempty"`
	P50     float64       `json:"p50,omitempty"`
	P95     float64       `json:"p95,omitempty"`
	P99     float64       `json:"p99,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// ScalarValue returns the scalar value of a counter/gauge snapshot, or
// 0 when absent (histograms).
func (s MetricSnapshot) ScalarValue() float64 {
	if s.Value == nil {
		return 0
	}
	return *s.Value
}

// HistCount returns the observation count of a histogram snapshot, or 0
// when absent (scalars).
func (s MetricSnapshot) HistCount() int64 {
	if s.Count == nil {
		return 0
	}
	return *s.Count
}

// BucketCount is one non-empty histogram bucket: the inclusive upper
// bound of the bucket and the (non-cumulative) number of observations in
// it.
type BucketCount struct {
	LE int64 `json:"le"`
	N  int64 `json:"n"`
}

// Snapshot returns every registered metric in registration order. Safe
// for concurrent use with recording; a nil registry snapshots empty.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	_, order := r.metrics()
	out := make([]MetricSnapshot, 0, len(order))
	scalar := func(v float64) *float64 { return &v }
	count := func(v int64) *int64 { return &v }
	for _, m := range order {
		switch m := m.(type) {
		case *Counter:
			out = append(out, MetricSnapshot{Name: m.name, Type: "counter", Help: m.help, Value: scalar(float64(m.Load()))})
		case *Gauge:
			out = append(out, MetricSnapshot{Name: m.name, Type: "gauge", Help: m.help, Value: scalar(float64(m.Load()))})
		case gaugeFunc:
			out = append(out, MetricSnapshot{Name: m.name, Type: m.typ, Help: m.help, Value: scalar(m.f())})
		case *Histogram:
			s := MetricSnapshot{
				Name: m.name, Type: "histogram", Help: m.help,
				Count: count(m.Count()), Sum: count(m.Sum()), Mean: m.Mean(),
				P50: m.Quantile(0.50), P95: m.Quantile(0.95), P99: m.Quantile(0.99),
			}
			for k, n := range m.BucketCounts() {
				if n != 0 {
					s.Buckets = append(s.Buckets, BucketCount{LE: m.upperBound(k), N: n})
				}
			}
			out = append(out, s)
		}
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, constant labels on every
// series, cumulative le-labeled buckets plus _sum and _count for
// histograms. Buckets past the last non-empty one are elided (except the
// mandatory +Inf).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	labels, order := r.metrics()
	var b strings.Builder
	for _, m := range order {
		switch m := m.(type) {
		case *Counter:
			writePromScalar(&b, m.name, m.help, "counter", labels, float64(m.Load()))
		case *Gauge:
			writePromScalar(&b, m.name, m.help, "gauge", labels, float64(m.Load()))
		case gaugeFunc:
			writePromScalar(&b, m.name, m.help, m.typ, labels, m.f())
		case *Histogram:
			writePromHistogram(&b, m, labels)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns an http.Handler serving the registry as Prometheus
// text — the /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

func writePromScalar(b *strings.Builder, name, help, typ string, labels []Label, v float64) {
	writePromHeader(b, name, help, typ)
	b.WriteString(name)
	writePromLabels(b, labels, "", 0)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	b.WriteByte('\n')
}

func writePromHistogram(b *strings.Builder, h *Histogram, labels []Label) {
	writePromHeader(b, h.name, h.help, "histogram")
	counts := h.BucketCounts()
	last := -1
	for k, n := range counts {
		if n != 0 {
			last = k
		}
	}
	var cum int64
	for k := 0; k <= last; k++ {
		cum += counts[k]
		b.WriteString(h.name)
		b.WriteString("_bucket")
		writePromLabels(b, labels, "le", h.upperBound(k))
		fmt.Fprintf(b, " %d\n", cum)
	}
	b.WriteString(h.name)
	b.WriteString("_bucket")
	writePromLabels(b, labels, "le", -1) // le="+Inf"
	fmt.Fprintf(b, " %d\n", cum)
	b.WriteString(h.name)
	b.WriteString("_sum")
	writePromLabels(b, labels, "", 0)
	fmt.Fprintf(b, " %d\n", h.Sum())
	b.WriteString(h.name)
	b.WriteString("_count")
	writePromLabels(b, labels, "", 0)
	fmt.Fprintf(b, " %d\n", cum)
}

func writePromHeader(b *strings.Builder, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, strings.ReplaceAll(help, "\n", " "))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

// writePromLabels renders the constant labels plus an optional le label
// (leKey == "le"; le < 0 means +Inf) as a {k="v",...} block, or nothing
// when there are no labels at all.
func writePromLabels(b *strings.Builder, labels []Label, leKey string, le int64) {
	if len(labels) == 0 && leKey == "" {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "%s=%q", l.Key, l.Value)
	}
	if leKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		if le < 0 {
			fmt.Fprintf(b, "%s=%q", leKey, "+Inf")
		} else {
			fmt.Fprintf(b, "%s=\"%d\"", leKey, le)
		}
	}
	b.WriteByte('}')
}

// expvarRegistries backs PublishExpvar: expvar.Publish panics on
// duplicate names and offers no unpublish, so each name is published
// exactly once with an indirection that always reads the registry most
// recently bound to it (tests create many short-lived servers in one
// process).
var (
	expvarMu         sync.Mutex
	expvarRegistries = map[string]*Registry{}
)

// PublishExpvar exposes r's snapshot under name in the process-wide
// expvar namespace (GET /debug/vars). Rebinding an already-published
// name atomically switches the exported variable to the new registry.
func PublishExpvar(name string, r *Registry) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if _, ok := expvarRegistries[name]; !ok {
		expvar.Publish(name, expvar.Func(func() any {
			expvarMu.Lock()
			reg := expvarRegistries[name]
			expvarMu.Unlock()
			return reg.Snapshot()
		}))
	}
	expvarRegistries[name] = r
}
