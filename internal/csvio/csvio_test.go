package csvio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/datasets"
	"repro/internal/record"
)

func TestRelationRoundTrip(t *testing.T) {
	records := []record.Record{
		{ID: "a1", Values: []string{"golden dragon", "main street", "$12"}},
		{ID: "a2", Values: []string{"blue, bistro", "oak \"quote\" ave", ""}},
	}
	schema := record.Schema{Names: []string{"name", "addr", "price"}}

	var buf bytes.Buffer
	if err := WriteRelation(&buf, records, schema); err != nil {
		t.Fatal(err)
	}
	got, gotSchema, err := ReadRelation(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("round trip lost records: %d", len(got))
	}
	for i := range records {
		if got[i].ID != records[i].ID {
			t.Errorf("record %d id %q, want %q", i, got[i].ID, records[i].ID)
		}
		for j := range records[i].Values {
			if got[i].Values[j] != records[i].Values[j] {
				t.Errorf("record %d value %d %q, want %q", i, j, got[i].Values[j], records[i].Values[j])
			}
		}
	}
	if strings.Join(gotSchema.Names, ",") != "name,addr,price" {
		t.Errorf("schema %v", gotSchema.Names)
	}
}

func TestReadRelationWithoutID(t *testing.T) {
	in := "name,city\nalpha,berlin\nbeta,paris\n"
	records, schema, err := ReadRelation(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 || records[0].ID != "r1" || records[1].ID != "r2" {
		t.Fatalf("auto ids wrong: %+v", records)
	}
	if len(schema.Names) != 2 {
		t.Fatalf("schema %v", schema.Names)
	}
}

func TestReadRelationEmpty(t *testing.T) {
	if _, _, err := ReadRelation(strings.NewReader("")); err == nil {
		t.Fatal("empty file should error")
	}
}

func TestPairsRoundTrip(t *testing.T) {
	pairs := []record.LabeledPair{
		{Pair: record.Pair{
			Left:  record.Record{Values: []string{"a", "1"}},
			Right: record.Record{Values: []string{"a", "1"}},
		}, Match: true},
		{Pair: record.Pair{
			Left:  record.Record{Values: []string{"b", "2"}},
			Right: record.Record{Values: []string{"c", ""}},
		}, Match: false},
	}
	schema := record.Schema{Names: []string{"name", "price"}}

	var buf bytes.Buffer
	if err := WritePairs(&buf, pairs, schema); err != nil {
		t.Fatal(err)
	}
	got, gotSchema, hasLabels, err := ReadPairs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !hasLabels {
		t.Fatal("labels lost in round trip")
	}
	if len(got) != 2 || !got[0].Match || got[1].Match {
		t.Fatalf("labels wrong: %+v", got)
	}
	if got[1].Right.Values[0] != "c" || got[1].Right.Values[1] != "" {
		t.Fatalf("values wrong: %+v", got[1].Right)
	}
	if strings.Join(gotSchema.Names, ",") != "name,price" {
		t.Errorf("schema %v", gotSchema.Names)
	}
}

func TestReadPairsWithoutLabels(t *testing.T) {
	in := "left_name,right_name\nx,y\n"
	pairs, _, hasLabels, err := ReadPairs(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if hasLabels {
		t.Fatal("no label column but hasLabels true")
	}
	if len(pairs) != 1 || pairs[0].Match {
		t.Fatalf("pairs: %+v", pairs)
	}
}

func TestReadPairsMismatchedColumns(t *testing.T) {
	in := "left_name,right_name,right_extra\nx,y,z\n"
	if _, _, _, err := ReadPairs(strings.NewReader(in)); err == nil {
		t.Fatal("mismatched left/right columns should error")
	}
}

func TestBenchmarkDatasetExportImport(t *testing.T) {
	d := datasets.MustGenerate("ZOYE", 42)
	var buf bytes.Buffer
	if err := WriteDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	pairs, schema, hasLabels, err := ReadPairs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !hasLabels || len(pairs) != len(d.Pairs) {
		t.Fatalf("export/import lost pairs: %d vs %d", len(pairs), len(d.Pairs))
	}
	if schema.NumAttrs() != d.Schema.NumAttrs() {
		t.Fatalf("schema arity: %d vs %d", schema.NumAttrs(), d.Schema.NumAttrs())
	}
	pos := 0
	for _, p := range pairs {
		if p.Match {
			pos++
		}
	}
	if pos != d.Positives() {
		t.Fatalf("positives: %d vs %d", pos, d.Positives())
	}
}
