// Package csvio reads and writes relations and labeled pair sets as CSV
// files, the interchange format for bringing external data into the study
// framework (and for exporting the synthetic benchmarks for inspection).
//
// Two layouts are supported:
//
//   - Relation files: one record per row, first column optionally an id
//     (header "id"), remaining columns attribute values.
//   - Pair files: the paper's benchmark layout, one candidate pair per
//     row — left attributes prefixed "left_", right attributes prefixed
//     "right_", and an optional "label" column with 0/1.
//
// Per the cross-dataset restrictions, header names are carried for
// round-tripping but matchers never see them.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/record"
)

// ReadRelation parses a relation CSV: a header row followed by records.
// If the first header column is "id" (case-insensitive), it supplies the
// record IDs; otherwise IDs are row numbers.
func ReadRelation(r io.Reader) ([]record.Record, record.Schema, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, record.Schema{}, fmt.Errorf("csvio: reading relation: %w", err)
	}
	if len(rows) == 0 {
		return nil, record.Schema{}, fmt.Errorf("csvio: empty relation file")
	}
	header := rows[0]
	hasID := len(header) > 0 && strings.EqualFold(header[0], "id")
	attrStart := 0
	if hasID {
		attrStart = 1
	}
	schema := record.Schema{Names: append([]string(nil), header[attrStart:]...)}
	var records []record.Record
	for i, row := range rows[1:] {
		if len(row) < attrStart {
			continue
		}
		id := fmt.Sprintf("r%d", i+1)
		if hasID && row[0] != "" {
			id = row[0]
		}
		vals := make([]string, len(schema.Names))
		copy(vals, row[attrStart:])
		records = append(records, record.Record{ID: id, Values: vals})
	}
	return records, schema, nil
}

// WriteRelation writes records with the given schema, including an id
// column.
func WriteRelation(w io.Writer, records []record.Record, schema record.Schema) error {
	cw := csv.NewWriter(w)
	header := append([]string{"id"}, schema.Names...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("csvio: writing relation header: %w", err)
	}
	for _, r := range records {
		row := append([]string{r.ID}, r.Values...)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("csvio: writing record %s: %w", r.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadPairs parses a pair CSV in the benchmark layout. Columns prefixed
// "left_"/"right_" hold the two records' attributes (in file order); the
// optional "label" column holds 0/1 ground truth (absent labels default to
// false and hasLabels reports whether any were present).
func ReadPairs(r io.Reader) (pairs []record.LabeledPair, schema record.Schema, hasLabels bool, err error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, record.Schema{}, false, fmt.Errorf("csvio: reading pairs: %w", err)
	}
	if len(rows) == 0 {
		return nil, record.Schema{}, false, fmt.Errorf("csvio: empty pair file")
	}
	header := rows[0]
	var leftCols, rightCols []int
	labelCol := -1
	var names []string
	for i, h := range header {
		switch {
		case strings.HasPrefix(strings.ToLower(h), "left_"):
			leftCols = append(leftCols, i)
			names = append(names, h[len("left_"):])
		case strings.HasPrefix(strings.ToLower(h), "right_"):
			rightCols = append(rightCols, i)
		case strings.EqualFold(h, "label"):
			labelCol = i
		}
	}
	if len(leftCols) == 0 || len(leftCols) != len(rightCols) {
		return nil, record.Schema{}, false,
			fmt.Errorf("csvio: pair file needs matching left_/right_ columns (got %d/%d)", len(leftCols), len(rightCols))
	}
	schema = record.Schema{Names: names}
	for rowIdx, row := range rows[1:] {
		get := func(col int) string {
			if col < len(row) {
				return row[col]
			}
			return ""
		}
		left := record.Record{ID: fmt.Sprintf("l%d", rowIdx+1), Values: make([]string, len(leftCols))}
		right := record.Record{ID: fmt.Sprintf("r%d", rowIdx+1), Values: make([]string, len(rightCols))}
		for k, col := range leftCols {
			left.Values[k] = get(col)
		}
		for k, col := range rightCols {
			right.Values[k] = get(col)
		}
		match := false
		if labelCol >= 0 && labelCol < len(row) {
			hasLabels = true
			v, convErr := strconv.Atoi(strings.TrimSpace(row[labelCol]))
			if convErr == nil && v != 0 {
				match = true
			}
		}
		pairs = append(pairs, record.LabeledPair{
			Pair:  record.Pair{Left: left, Right: right},
			Match: match,
		})
	}
	return pairs, schema, hasLabels, nil
}

// WritePairs writes labeled pairs in the benchmark layout, including the
// label column.
func WritePairs(w io.Writer, pairs []record.LabeledPair, schema record.Schema) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, 2*len(schema.Names)+1)
	for _, n := range schema.Names {
		header = append(header, "left_"+n)
	}
	for _, n := range schema.Names {
		header = append(header, "right_"+n)
	}
	header = append(header, "label")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("csvio: writing pair header: %w", err)
	}
	for i, p := range pairs {
		row := make([]string, 0, len(header))
		row = append(row, padTo(p.Left.Values, len(schema.Names))...)
		row = append(row, padTo(p.Right.Values, len(schema.Names))...)
		label := "0"
		if p.Match {
			label = "1"
		}
		row = append(row, label)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("csvio: writing pair %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteDataset exports a benchmark dataset as a pair CSV.
func WriteDataset(w io.Writer, d *record.Dataset) error {
	return WritePairs(w, d.Pairs, d.Schema)
}

func padTo(vals []string, n int) []string {
	out := make([]string, n)
	copy(out, vals)
	return out
}
