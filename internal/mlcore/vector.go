// Package mlcore implements the trainable machine-learning substrate that
// stands in for the GPU fine-tuning stack of the paper: sparse feature
// hashing, logistic regression and multi-layer perceptrons trained with
// Adam, plus the train/validate loop shared by all fine-tuned matchers.
//
// Design note: the paper fine-tunes transformer language models (BERT,
// DeBERTa, GPT-2, T5, LLaMA 3.2) on serialized record pairs. What the study
// measures is the behaviour of "encode text, train a classifier on transfer
// data, predict on an unseen dataset". This package reproduces that
// learning problem at laptop scale with hashed textual features and neural
// prediction heads; the capacity knobs (hash width, hidden size) map to
// model scale. See DESIGN.md for the substitution rationale.
package mlcore

import "math"

// SparseVec is a sparse feature vector: parallel index/value slices sorted
// by construction order (not by index). Duplicate indices are allowed and
// accumulate in dot products, which is exactly what hashed features need.
type SparseVec struct {
	Idx []int
	Val []float64
}

// Add appends one feature to the vector.
func (v *SparseVec) Add(idx int, val float64) {
	v.Idx = append(v.Idx, idx)
	v.Val = append(v.Val, val)
}

// Reset empties the vector while keeping its capacity, so batch encoders
// can reuse one scratch vector across many pairs instead of allocating
// per pair.
func (v *SparseVec) Reset() {
	v.Idx = v.Idx[:0]
	v.Val = v.Val[:0]
}

// Grow ensures capacity for at least n additional entries, so encoders
// that know the feature count up front avoid append's doubling copies.
func (v *SparseVec) Grow(n int) {
	if need := len(v.Idx) + n; need > cap(v.Idx) {
		idx := make([]int, len(v.Idx), need)
		copy(idx, v.Idx)
		v.Idx = idx
		val := make([]float64, len(v.Val), need)
		copy(val, v.Val)
		v.Val = val
	}
}

// NNZ returns the number of stored entries.
func (v *SparseVec) NNZ() int { return len(v.Idx) }

// Dot returns the dot product with a dense weight vector.
func (v *SparseVec) Dot(w []float64) float64 {
	s := 0.0
	for i, idx := range v.Idx {
		s += w[idx] * v.Val[i]
	}
	return s
}

// L2Normalize scales the vector to unit L2 norm (no-op for a zero vector).
// Normalisation keeps the optimisation well-conditioned across records of
// very different lengths (product descriptions vs restaurant names).
func (v *SparseVec) L2Normalize() {
	s := 0.0
	for _, x := range v.Val {
		s += x * x
	}
	if s == 0 {
		return
	}
	inv := 1 / math.Sqrt(s)
	for i := range v.Val {
		v.Val[i] *= inv
	}
}

// Sigmoid is the logistic function, numerically stable for large |x|.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// LogLoss returns the binary cross-entropy of probability p against label
// y ∈ {0,1}, clamping p away from 0 and 1 for stability.
func LogLoss(p, y float64) float64 {
	const eps = 1e-12
	if p < eps {
		p = eps
	}
	if p > 1-eps {
		p = 1 - eps
	}
	return -(y*math.Log(p) + (1-y)*math.Log(1-p))
}
