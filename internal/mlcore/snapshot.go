package mlcore

import (
	"fmt"

	"repro/internal/snap"
)

// This file holds the snapshot codecs for the trained prediction heads.
// They live in mlcore because MLPConfig is baked into the MLP's forward
// pass via unexported state; restoring outside the package would be
// impossible without exporting internals that nothing else needs.

// EncodeLogReg appends a trained logistic-regression head to e.
func EncodeLogReg(e *snap.Enc, m *LogReg) {
	e.Str("logreg/v1")
	e.F64s(m.W)
	e.F64(m.Bias)
}

// DecodeLogReg reads a head written by EncodeLogReg.
func DecodeLogReg(d *snap.Dec) (*LogReg, error) {
	d.Tag("logreg/v1")
	m := &LogReg{W: d.F64s(), Bias: d.F64()}
	return m, d.Err()
}

// EncodeMLP appends a trained MLP head — configuration and weights — to e.
func EncodeMLP(e *snap.Enc, m *MLP) {
	e.Str("mlp/v1")
	e.Int(m.cfg.Dim)
	e.Int(m.cfg.Hidden)
	e.Int(m.cfg.Epochs)
	e.F64(m.cfg.LearnRate)
	e.F64(m.cfg.L2)
	e.F64s(m.W1)
	e.F64s(m.B1)
	e.F64s(m.W2)
	e.F64(m.B2)
}

// DecodeMLP reads a head written by EncodeMLP. The weight shapes are
// validated against the recorded configuration, so a corrupt payload
// cannot yield a head that indexes out of bounds at predict time.
func DecodeMLP(d *snap.Dec) (*MLP, error) {
	d.Tag("mlp/v1")
	m := &MLP{
		cfg: MLPConfig{
			Dim:       d.Int(),
			Hidden:    d.Int(),
			Epochs:    d.Int(),
			LearnRate: d.F64(),
			L2:        d.F64(),
		},
	}
	m.W1 = d.F64s()
	m.B1 = d.F64s()
	m.W2 = d.F64s()
	m.B2 = d.F64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if m.cfg.Dim < 0 || m.cfg.Hidden < 0 ||
		len(m.W1) != m.cfg.Hidden*m.cfg.Dim || len(m.B1) != m.cfg.Hidden || len(m.W2) != m.cfg.Hidden {
		return nil, fmt.Errorf("%w: mlp weight shapes do not fit dim=%d hidden=%d",
			snap.ErrCorrupt, m.cfg.Dim, m.cfg.Hidden)
	}
	return m, nil
}
