package mlcore

import "testing"

// TestPrefixedHashingEquivalence pins the allocation-free prefixed hash
// against the straightforward concatenate-then-hash path: the encoder's
// feature indices and signs must be identical either way, or hashed
// feature vectors silently change.
func TestPrefixedHashingEquivalence(t *testing.T) {
	prefixes := []string{"", "both:", "only:", "g:", "attr:", "北:"}
	features := []string{"", "token", "Token", "1,234", "$99.00", "##ab", "北京", "🙂", "a b c"}
	for _, width := range []int{1, 7, 4096, 1 << 18} {
		h := NewHasher(width)
		for _, p := range prefixes {
			for _, f := range features {
				if got, want := h.IndexPrefixed(p, f), h.Index(p+f); got != want {
					t.Errorf("width %d: IndexPrefixed(%q, %q) = %d, Index(%q) = %d", width, p, f, got, p+f, want)
				}
				if got, want := h.SignPrefixed(p, f), h.Sign(p+f); got != want {
					t.Errorf("width %d: SignPrefixed(%q, %q) = %v, Sign(%q) = %v", width, p, f, got, p+f, want)
				}
			}
		}
	}
}

// TestSparseVecGrow checks Grow preserves contents and Add-order
// semantics after reallocation.
func TestSparseVecGrow(t *testing.T) {
	var v SparseVec
	v.Add(3, 1.5)
	v.Add(1, -2.0)
	v.Grow(100)
	v.Add(3, 0.5) // duplicate index accumulates on Dot just like before
	if len(v.Idx) != 3 || v.Idx[0] != 3 || v.Idx[1] != 1 || v.Idx[2] != 3 {
		t.Fatalf("Grow disturbed emission order: idx=%v", v.Idx)
	}
	if v.Val[0] != 1.5 || v.Val[1] != -2.0 || v.Val[2] != 0.5 {
		t.Fatalf("Grow disturbed values: val=%v", v.Val)
	}
}
