package mlcore

import "hash/fnv"

// Hasher maps textual features into a fixed-width index space (the
// "hashing trick"). It is the stand-in for a pretrained embedding table:
// wider spaces collide less and therefore encode more distinctions, which
// is how the study maps language-model scale to encoder capacity.
type Hasher struct {
	width int
}

// NewHasher returns a hasher over a space of the given width (number of
// buckets). Width must be positive.
func NewHasher(width int) *Hasher {
	if width <= 0 {
		panic("mlcore: NewHasher with non-positive width")
	}
	return &Hasher{width: width}
}

// Width returns the number of buckets.
func (h *Hasher) Width() int { return h.width }

// Index maps a feature name to a bucket in [0, width).
func (h *Hasher) Index(feature string) int {
	f := fnv.New64a()
	f.Write([]byte(feature))
	return int(f.Sum64() % uint64(h.width))
}

// Sign returns a deterministic ±1 for a feature, used for signed hashing to
// make collisions cancel in expectation rather than accumulate.
func (h *Hasher) Sign(feature string) float64 {
	f := fnv.New64a()
	f.Write([]byte(feature))
	f.Write([]byte{0x5a})
	if f.Sum64()&1 == 0 {
		return 1
	}
	return -1
}

// AddFeature hashes a feature into vec with a signed weight.
func (h *Hasher) AddFeature(vec *SparseVec, feature string, weight float64) {
	vec.Add(h.Index(feature), weight*h.Sign(feature))
}

// FNV-1a constants matching hash/fnv's 64-bit variant, inlined so prefixed
// feature names ("both:" + token) hash without materialising the
// concatenated string: FNV over prefix-then-feature equals FNV over their
// concatenation.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnvAdd(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// IndexPrefixed is Index(prefix + feature) without the concatenation
// allocation.
func (h *Hasher) IndexPrefixed(prefix, feature string) int {
	sum := fnvAdd(fnvAdd(fnvOffset64, prefix), feature)
	return int(sum % uint64(h.width))
}

// SignPrefixed is Sign(prefix + feature) without the concatenation
// allocation.
func (h *Hasher) SignPrefixed(prefix, feature string) float64 {
	sum := fnvAdd(fnvAdd(fnvOffset64, prefix), feature)
	sum ^= 0x5a
	sum *= fnvPrime64
	if sum&1 == 0 {
		return 1
	}
	return -1
}
