package mlcore

import (
	"math"

	"repro/internal/stats"
)

// MLPConfig configures a single-hidden-layer perceptron head.
type MLPConfig struct {
	Dim       int     // input feature-space width
	Hidden    int     // hidden units
	Epochs    int     // passes over the training data
	LearnRate float64 // Adam step size
	L2        float64 // L2 regularisation strength
}

// MLP is a one-hidden-layer neural network with ReLU activation and a
// sigmoid output, trained with Adam on sparse inputs. It models the
// fine-tuned prediction heads of the larger language models in the study,
// whose capacity exceeds a linear head.
type MLP struct {
	cfg MLPConfig
	// W1 is Hidden × Dim stored row-major; B1 is the hidden bias.
	W1 []float64
	B1 []float64
	// W2 maps hidden activations to the logit; B2 is the output bias.
	W2 []float64
	B2 float64
}

// NewMLP returns an MLP with Xavier-style random initialisation.
func NewMLP(cfg MLPConfig, rng *stats.RNG) *MLP {
	m := &MLP{
		cfg: cfg,
		W1:  make([]float64, cfg.Hidden*cfg.Dim),
		B1:  make([]float64, cfg.Hidden),
		W2:  make([]float64, cfg.Hidden),
	}
	scale1 := math.Sqrt(2.0 / float64(cfg.Dim))
	for i := range m.W1 {
		m.W1[i] = rng.Norm() * scale1
	}
	scale2 := math.Sqrt(2.0 / float64(cfg.Hidden))
	for i := range m.W2 {
		m.W2[i] = rng.Norm() * scale2
	}
	return m
}

// forward computes hidden activations (ReLU) and the output probability.
func (m *MLP) forward(x SparseVec, hidden []float64) float64 {
	for h := 0; h < m.cfg.Hidden; h++ {
		row := m.W1[h*m.cfg.Dim : (h+1)*m.cfg.Dim]
		z := m.B1[h]
		for i, idx := range x.Idx {
			z += row[idx] * x.Val[i]
		}
		if z < 0 {
			z = 0
		}
		hidden[h] = z
	}
	logit := m.B2
	for h, a := range hidden {
		logit += m.W2[h] * a
	}
	return Sigmoid(logit)
}

// Prob returns the predicted match probability for x.
func (m *MLP) Prob(x SparseVec) float64 {
	hidden := make([]float64, m.cfg.Hidden)
	return m.forward(x, hidden)
}

// Train fits the network on the examples with mini-batch size 1 (the
// datasets are small enough that per-example Adam converges fastest).
// A held-out tenth of the examples serves as a validation set: the weights
// of the best-validation epoch are kept, the early-stopping discipline
// that keeps fine-tuning runs from shipping a diverged final epoch.
func (m *MLP) Train(examples []Example, rng *stats.RNG) {
	if len(examples) == 0 {
		return
	}
	// Split off validation examples (at least 8, at most 10%).
	shuffled := append([]Example(nil), examples...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	nVal := len(shuffled) / 10
	if nVal > 0 && nVal < 8 {
		nVal = min8(8, len(shuffled)/2)
	}
	val := shuffled[:nVal]
	examples = shuffled[nVal:]
	if len(examples) == 0 {
		examples = shuffled
		val = nil
	}

	bestLoss := math.Inf(1)
	var bestW1, bestB1, bestW2 []float64
	var bestB2 float64
	snapshot := func() {
		bestW1 = append(bestW1[:0], m.W1...)
		bestB1 = append(bestB1[:0], m.B1...)
		bestW2 = append(bestW2[:0], m.W2...)
		bestB2 = m.B2
	}

	cfg := m.cfg
	nParams := len(m.W1) + len(m.B1) + len(m.W2) + 1
	opt := newAdamDense(nParams, cfg.LearnRate)
	hidden := make([]float64, cfg.Hidden)
	gW1 := make([]float64, len(m.W1))
	gB1 := make([]float64, cfg.Hidden)
	gW2 := make([]float64, cfg.Hidden)
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			ex := examples[i]
			p := m.forward(ex.X, hidden)
			gOut := (p - ex.Y) * ex.weight()

			// Output layer gradients.
			for h := 0; h < cfg.Hidden; h++ {
				gW2[h] = gOut*hidden[h] + cfg.L2*m.W2[h]
			}
			gB2 := gOut

			// Hidden layer gradients (ReLU gate: active when hidden > 0).
			for h := 0; h < cfg.Hidden; h++ {
				if hidden[h] <= 0 {
					gB1[h] = 0
					continue
				}
				gB1[h] = gOut * m.W2[h]
			}
			for h := 0; h < cfg.Hidden; h++ {
				gh := gB1[h]
				if gh == 0 {
					continue
				}
				row := gW1[h*cfg.Dim : (h+1)*cfg.Dim]
				for k, idx := range ex.X.Idx {
					row[idx] = gh * ex.X.Val[k]
				}
			}

			// Apply updates. W1 rows only touch the sparse input indices.
			base := 0
			for h := 0; h < cfg.Hidden; h++ {
				if gB1[h] != 0 {
					rowG := gW1[h*cfg.Dim : (h+1)*cfg.Dim]
					rowW := m.W1[h*cfg.Dim : (h+1)*cfg.Dim]
					for _, idx := range ex.X.Idx {
						delta := opt.step(base+idx, rowG[idx]+cfg.L2*rowW[idx])
						rowW[idx] += delta
						rowG[idx] = 0
					}
				}
				base += cfg.Dim
			}
			for h := 0; h < cfg.Hidden; h++ {
				m.B1[h] += opt.step(base+h, gB1[h])
			}
			base += cfg.Hidden
			for h := 0; h < cfg.Hidden; h++ {
				m.W2[h] += opt.step(base+h, gW2[h])
			}
			base += cfg.Hidden
			m.B2 += opt.step(base, gB2)
		}

		// Validation checkpointing.
		if len(val) > 0 {
			loss := 0.0
			for _, ex := range val {
				loss += LogLoss(m.forward(ex.X, hidden), ex.Y)
			}
			if loss < bestLoss {
				bestLoss = loss
				snapshot()
			}
		}
	}
	if bestW1 != nil {
		copy(m.W1, bestW1)
		copy(m.B1, bestB1)
		copy(m.W2, bestW2)
		m.B2 = bestB2
	}
}

func min8(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// adamDense is an Adam optimiser addressed by parameter index.
type adamDense struct {
	lr   float64
	m, v []float64
	t    []int
}

func newAdamDense(n int, lr float64) *adamDense {
	return &adamDense{lr: lr, m: make([]float64, n), v: make([]float64, n), t: make([]int, n)}
}

// step updates the moment estimates for parameter idx with gradient g and
// returns the additive delta. Per-parameter timesteps implement lazy
// sparse Adam: untouched parameters accumulate no stale momentum.
func (a *adamDense) step(idx int, g float64) float64 {
	const (
		beta1 = 0.9
		beta2 = 0.999
		eps   = 1e-8
	)
	a.t[idx]++
	a.m[idx] = beta1*a.m[idx] + (1-beta1)*g
	a.v[idx] = beta2*a.v[idx] + (1-beta2)*g*g
	bc1 := 1 - math.Pow(beta1, float64(a.t[idx]))
	bc2 := 1 - math.Pow(beta2, float64(a.t[idx]))
	mh := a.m[idx] / bc1
	vh := a.v[idx] / bc2
	return -a.lr * mh / (math.Sqrt(vh) + eps)
}
