package mlcore

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestSparseVecDot(t *testing.T) {
	var v SparseVec
	v.Add(0, 2)
	v.Add(3, -1)
	v.Add(0, 1) // duplicate index accumulates
	w := []float64{10, 0, 0, 5}
	if got := v.Dot(w); got != 2*10-1*5+1*10 {
		t.Fatalf("Dot = %v", got)
	}
	if v.NNZ() != 3 {
		t.Fatalf("NNZ = %d", v.NNZ())
	}
}

func TestSparseVecL2Normalize(t *testing.T) {
	var v SparseVec
	v.Add(1, 3)
	v.Add(2, 4)
	v.L2Normalize()
	norm := math.Hypot(v.Val[0], v.Val[1])
	if math.Abs(norm-1) > 1e-12 {
		t.Fatalf("norm after normalize = %v", norm)
	}
	// Zero vector stays zero without NaN.
	var z SparseVec
	z.Add(0, 0)
	z.L2Normalize()
	if math.IsNaN(z.Val[0]) {
		t.Fatal("zero vector normalization produced NaN")
	}
}

func TestSigmoidProperties(t *testing.T) {
	if Sigmoid(0) != 0.5 {
		t.Fatal("Sigmoid(0) != 0.5")
	}
	if err := quick.Check(func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		s := Sigmoid(x)
		// Bounded, monotone-consistent with sign, and symmetric.
		return s >= 0 && s <= 1 && math.Abs(s+Sigmoid(-x)-1) < 1e-12
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// Stability at extremes.
	if Sigmoid(1000) != 1 || Sigmoid(-1000) != 0 {
		t.Fatal("sigmoid saturation wrong")
	}
}

func TestLogLoss(t *testing.T) {
	if got := LogLoss(1, 1); got > 1e-9 {
		t.Fatalf("perfect prediction loss = %v", got)
	}
	if got := LogLoss(0, 1); math.IsInf(got, 0) || got < 20 {
		t.Fatalf("confident wrong prediction loss = %v (should be large, finite)", got)
	}
	if math.Abs(LogLoss(0.5, 1)-math.Ln2) > 1e-12 {
		t.Fatal("LogLoss(0.5, 1) != ln 2")
	}
}

func TestHasherDeterministicAndInRange(t *testing.T) {
	h := NewHasher(1024)
	if h.Width() != 1024 {
		t.Fatal("Width mismatch")
	}
	if err := quick.Check(func(s string) bool {
		i1, i2 := h.Index(s), h.Index(s)
		sg := h.Sign(s)
		return i1 == i2 && i1 >= 0 && i1 < 1024 && (sg == 1 || sg == -1)
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHasherPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHasher(0) should panic")
		}
	}()
	NewHasher(0)
}

func TestHasherAddFeature(t *testing.T) {
	h := NewHasher(64)
	var v SparseVec
	h.AddFeature(&v, "token", 2.0)
	if v.NNZ() != 1 {
		t.Fatal("AddFeature did not add")
	}
	if math.Abs(v.Val[0]) != 2.0 {
		t.Fatalf("feature magnitude %v, want 2", v.Val[0])
	}
}

// syntheticLinearData builds a linearly separable problem: label = 1 iff
// feature 0 exceeds feature 1.
func syntheticLinearData(n int, rng *stats.RNG) []Example {
	out := make([]Example, n)
	for i := range out {
		a, b := rng.Float64(), rng.Float64()
		var x SparseVec
		x.Add(0, a)
		x.Add(1, b)
		x.Add(2, 1) // bias-ish
		y := 0.0
		if a > b {
			y = 1
		}
		out[i] = Example{X: x, Y: y}
	}
	return out
}

func TestLogRegLearnsLinearlySeparable(t *testing.T) {
	rng := stats.NewRNG(7)
	train := syntheticLinearData(800, rng.Split("train"))
	m := TrainLogReg(train, LogRegConfig{Dim: 3, Epochs: 20, LearnRate: 0.1, L2: 1e-6}, rng.Split("opt"))

	test := syntheticLinearData(300, rng.Split("test"))
	correct := 0
	for _, ex := range test {
		if (m.Prob(ex.X) >= 0.5) == (ex.Y >= 0.5) {
			correct++
		}
	}
	acc := float64(correct) / float64(len(test))
	if acc < 0.93 {
		t.Fatalf("logistic regression accuracy %.3f on separable data", acc)
	}
}

func TestLogRegEmptyTraining(t *testing.T) {
	m := TrainLogReg(nil, LogRegConfig{Dim: 4, Epochs: 3, LearnRate: 0.1}, stats.NewRNG(1))
	var x SparseVec
	x.Add(0, 1)
	if p := m.Prob(x); p != 0.5 {
		t.Fatalf("untrained model Prob = %v, want 0.5", p)
	}
}

func TestLogRegExampleWeights(t *testing.T) {
	// With overwhelming weight on positive duplicates of one point, the
	// model must predict positive there despite negative copies.
	rng := stats.NewRNG(9)
	var x SparseVec
	x.Add(0, 1)
	examples := []Example{
		{X: x, Y: 1, Weight: 10},
		{X: x, Y: 0, Weight: 1},
	}
	m := TrainLogReg(examples, LogRegConfig{Dim: 1, Epochs: 60, LearnRate: 0.2}, rng)
	if m.Prob(x) <= 0.5 {
		t.Fatalf("weighted majority ignored: p = %v", m.Prob(x))
	}
}

// xorData is not linearly separable; an MLP must solve it, a linear model
// cannot.
func xorData() []Example {
	var out []Example
	for _, c := range [][3]float64{{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0}} {
		var x SparseVec
		x.Add(0, c[0])
		x.Add(1, c[1])
		x.Add(2, 1)
		// Replicate each corner for stable batching.
		for k := 0; k < 25; k++ {
			out = append(out, Example{X: x, Y: c[2]})
		}
	}
	return out
}

func TestMLPLearnsXOR(t *testing.T) {
	rng := stats.NewRNG(11)
	m := NewMLP(MLPConfig{Dim: 3, Hidden: 8, Epochs: 200, LearnRate: 0.05, L2: 0}, rng.Split("init"))
	m.Train(xorData(), rng.Split("train"))
	for _, c := range [][3]float64{{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0}} {
		var x SparseVec
		x.Add(0, c[0])
		x.Add(1, c[1])
		x.Add(2, 1)
		p := m.Prob(x)
		if (p >= 0.5) != (c[2] >= 0.5) {
			t.Fatalf("XOR corner (%v,%v) misclassified: p=%.3f", c[0], c[1], p)
		}
	}
}

func TestMLPDeterministicGivenSeed(t *testing.T) {
	build := func() *MLP {
		rng := stats.NewRNG(13)
		m := NewMLP(MLPConfig{Dim: 3, Hidden: 4, Epochs: 5, LearnRate: 0.05}, rng.Split("init"))
		m.Train(syntheticLinearData(100, rng.Split("data")), rng.Split("train"))
		return m
	}
	m1, m2 := build(), build()
	var x SparseVec
	x.Add(0, 0.7)
	x.Add(1, 0.2)
	x.Add(2, 1)
	if m1.Prob(x) != m2.Prob(x) {
		t.Fatal("same-seed MLP training not deterministic")
	}
}

func TestMLPEmptyTrainingIsNoop(t *testing.T) {
	rng := stats.NewRNG(17)
	m := NewMLP(MLPConfig{Dim: 2, Hidden: 3, Epochs: 5, LearnRate: 0.1}, rng)
	var x SparseVec
	x.Add(0, 1)
	before := m.Prob(x)
	m.Train(nil, rng)
	if m.Prob(x) != before {
		t.Fatal("training on empty data changed the model")
	}
}
