package mlcore

import (
	"math"

	"repro/internal/stats"
)

// Example is one training instance: a sparse feature vector with a binary
// label and an importance weight (used for label balancing and boosting).
type Example struct {
	X      SparseVec
	Y      float64 // 0 or 1
	Weight float64 // importance weight; 0 is treated as 1
}

func (e Example) weight() float64 {
	if e.Weight == 0 {
		return 1
	}
	return e.Weight
}

// LogRegConfig configures logistic-regression training.
type LogRegConfig struct {
	Dim       int     // feature-space width
	Epochs    int     // passes over the training data
	LearnRate float64 // Adam step size
	L2        float64 // L2 regularisation strength
}

// LogReg is an L2-regularised logistic-regression classifier trained with
// Adam. It is the prediction head shared by the encoder-based matchers.
type LogReg struct {
	W    []float64
	Bias float64
}

// TrainLogReg fits a logistic-regression model on the examples, shuffling
// with rng each epoch.
func TrainLogReg(examples []Example, cfg LogRegConfig, rng *stats.RNG) *LogReg {
	m := &LogReg{W: make([]float64, cfg.Dim)}
	if len(examples) == 0 {
		return m
	}
	opt := newAdam(cfg.Dim+1, cfg.LearnRate)
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	grad := make([]float64, cfg.Dim+1)
	touched := make([]int, 0, 64)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			ex := examples[i]
			p := Sigmoid(ex.X.Dot(m.W) + m.Bias)
			g := (p - ex.Y) * ex.weight()
			touched = touched[:0]
			for k, idx := range ex.X.Idx {
				grad[idx] += g * ex.X.Val[k]
				touched = append(touched, idx)
			}
			grad[cfg.Dim] = g // bias gradient in the last slot
			// L2 on touched weights only (lazy regularisation).
			for _, idx := range touched {
				grad[idx] += cfg.L2 * m.W[idx]
			}
			opt.stepSparse(append(touched, cfg.Dim), grad, func(idx int, delta float64) {
				if idx == cfg.Dim {
					m.Bias += delta
				} else {
					m.W[idx] += delta
				}
			})
			for _, idx := range touched {
				grad[idx] = 0
			}
			grad[cfg.Dim] = 0
		}
	}
	return m
}

// Prob returns the predicted match probability for x.
func (m *LogReg) Prob(x SparseVec) float64 {
	return Sigmoid(x.Dot(m.W) + m.Bias)
}

// adam implements the Adam optimiser with sparse updates.
type adam struct {
	lr      float64
	m, v    []float64
	t       int
	beta1   float64
	beta2   float64
	epsilon float64
}

func newAdam(dim int, lr float64) *adam {
	return &adam{
		lr: lr, m: make([]float64, dim), v: make([]float64, dim),
		beta1: 0.9, beta2: 0.999, epsilon: 1e-8,
	}
}

// stepSparse applies one Adam update to the given indices using the
// gradient buffer; apply receives the delta per index.
func (a *adam) stepSparse(indices []int, grad []float64, apply func(idx int, delta float64)) {
	a.t++
	// Bias-correction factors for this timestep.
	bc1 := 1 - math.Pow(a.beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.beta2, float64(a.t))
	for _, idx := range indices {
		g := grad[idx]
		a.m[idx] = a.beta1*a.m[idx] + (1-a.beta1)*g
		a.v[idx] = a.beta2*a.v[idx] + (1-a.beta2)*g*g
		mh := a.m[idx] / bc1
		vh := a.v[idx] / bc2
		apply(idx, -a.lr*mh/(math.Sqrt(vh)+a.epsilon))
	}
}
