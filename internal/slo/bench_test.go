package slo

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func benchEngine(b *testing.B) (*Engine, *VirtualClock, *obs.Histogram) {
	b.Helper()
	vc := &VirtualClock{}
	e := NewEngine(Config{Clock: vc, Resolution: time.Second})
	reg := obs.NewRegistry()
	h := reg.Log2Histogram("lat_us", "")
	var bad, total atomic.Int64
	if err := e.AddLatency(mustSpecB(b, "p99<=5ms@1m/10s"), h); err != nil {
		b.Fatal(err)
	}
	if err := e.AddRatio(mustSpecB(b, "shed<=1%@1m/10s"),
		func() float64 { return float64(bad.Load()) },
		func() float64 { return float64(total.Load()) }); err != nil {
		b.Fatal(err)
	}
	if err := e.AddCost(mustSpecB(b, "cost<=0.25@1m/10s"),
		func() float64 { return 0.01 },
		func() float64 { return float64(total.Load()) }); err != nil {
		b.Fatal(err)
	}
	total.Store(1000)
	return e, vc, h
}

func mustSpecB(b *testing.B, s string) Spec {
	sp, err := ParseSpec(s)
	if err != nil {
		b.Fatal(err)
	}
	return sp
}

// BenchmarkSLOTick is one evaluation pass over three bound objectives
// (latency + ratio + cost) — what the serving tick loop pays each
// resolution interval. Steady state must not allocate.
func BenchmarkSLOTick(b *testing.B) {
	e, vc, h := benchEngine(b)
	for i := 0; i < 100; i++ {
		h.Observe(int64(100 + i))
	}
	// Warm the ring and scratch past their growth phase.
	for i := 0; i < 200; i++ {
		vc.Advance(time.Second)
		e.Tick()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vc.Advance(time.Second)
		e.Tick()
	}
}

// BenchmarkSLODisabled is the nil-engine path serving pays per tick
// opportunity when no SLOs are configured. Gated at 0 allocs/op.
func BenchmarkSLODisabled(b *testing.B) {
	var e *Engine
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Tick() != nil || e.Worst() != OK {
			b.Fatal("nil engine not disabled")
		}
	}
}
