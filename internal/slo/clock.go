package slo

import (
	"sync/atomic"
	"time"
)

// Clock is the engine's time source: monotonic elapsed time since an
// arbitrary epoch. The serving path passes the real clock; tests and
// the emroute sweep pass a virtual one, making every burn-rate window
// and state transition deterministic. route.RealClock and
// route.VirtualClock both satisfy it.
type Clock interface {
	Now() time.Duration
}

// VirtualClock is a deterministic manually-advanced clock.
type VirtualClock struct {
	now atomic.Int64
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Duration { return time.Duration(c.now.Load()) }

// Advance moves the clock forward by d.
func (c *VirtualClock) Advance(d time.Duration) {
	if d > 0 {
		c.now.Add(int64(d))
	}
}

// Set jumps the clock to an absolute elapsed time.
func (c *VirtualClock) Set(d time.Duration) { c.now.Store(int64(d)) }

// realClock anchors the wall clock at construction.
type realClock struct {
	epoch time.Time
}

func (c realClock) Now() time.Duration { return time.Since(c.epoch) }

// RealClock returns a wall clock with epoch now — the default engine
// clock in production serving.
func RealClock() Clock { return realClock{epoch: time.Now()} }
