package slo

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// Tick, Snapshot, Worst and metric exposition hammered concurrently
// while the underlying counters advance — run under -race via the
// Makefile race list.
func TestEngineConcurrentTickAndRead(t *testing.T) {
	vc := &VirtualClock{}
	e := NewEngine(Config{Clock: vc, Resolution: time.Millisecond})
	reg := obs.NewRegistry()
	h := reg.Log2Histogram("lat_us", "")
	var bad, total atomic.Int64
	if err := e.AddLatency(mustSpec(t, "p99<=1ms@100ms/20ms"), h); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRatio(mustSpec(t, "shed<=10%@100ms/20ms"),
		func() float64 { return float64(bad.Load()) },
		func() float64 { return float64(total.Load()) }); err != nil {
		t.Fatal(err)
	}
	var transitions atomic.Int64
	e.OnTransition(func(Transition) { transitions.Add(1) })
	e.RegisterMetrics(reg)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	worker := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					f()
				}
			}
		}()
	}
	worker(func() { vc.Advance(time.Millisecond); e.Tick() })
	worker(func() { vc.Advance(time.Millisecond); e.Tick() })
	worker(func() { _ = e.Snapshot(); _ = e.Worst() })
	worker(func() {
		var sb nullWriter
		_ = reg.WritePrometheus(sb)
	})
	worker(func() {
		h.Observe(100)
		bad.Add(1)
		total.Add(5)
	})
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if e.Ticks() == 0 {
		t.Fatal("no ticks ran")
	}
}

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }
