package slo

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// State is an objective's health.
type State uint8

const (
	// OK: both burn windows under budget.
	OK State = iota
	// Warn: the short window is over budget (a fast burn that has not
	// yet sustained) or the long window is approaching it.
	Warn
	// Breach: both windows over budget — sustained and still burning.
	Breach
)

// String returns the display name (upper case, as rendered by emwatch).
func (s State) String() string {
	switch s {
	case OK:
		return "OK"
	case Warn:
		return "WARN"
	case Breach:
		return "BREACH"
	}
	return "STATE_" + fmt.Sprint(uint8(s))
}

// MarshalJSON writes the lower-case wire name.
func (s State) MarshalJSON() ([]byte, error) {
	switch s {
	case OK:
		return []byte(`"ok"`), nil
	case Warn:
		return []byte(`"warn"`), nil
	case Breach:
		return []byte(`"breach"`), nil
	}
	return nil, fmt.Errorf("slo: unknown state %d", uint8(s))
}

// UnmarshalJSON reads a wire or display name.
func (s *State) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "ok", "OK":
		*s = OK
	case "warn", "WARN":
		*s = Warn
	case "breach", "BREACH":
		*s = Breach
	default:
		return fmt.Errorf("slo: unknown state %q", name)
	}
	return nil
}

// Status is one objective's point-in-time evaluation, served on /slo.
type Status struct {
	Name        string  `json:"name"`
	Spec        string  `json:"spec"`
	Kind        string  `json:"kind"`
	State       State   `json:"state"`
	Limit       float64 `json:"limit"`
	LongSec     float64 `json:"window_long_sec"`
	ShortSec    float64 `json:"window_short_sec"`
	ValueLong   float64 `json:"value_long"`
	ValueShort  float64 `json:"value_short"`
	BurnLong    float64 `json:"burn_long"`
	BurnShort   float64 `json:"burn_short"`
	SinceSec    float64 `json:"since_sec"` // time in the current state
	Transitions int64   `json:"transitions"`
}

// Transition is one state change, delivered to OnTransition callbacks
// (outside the engine lock, in objective order).
type Transition struct {
	Name     string
	From, To State
	At       time.Duration // engine-clock time of the transition
	Status   Status        // the evaluation that caused it
}

// Config configures an Engine.
type Config struct {
	// Clock drives evaluation; nil means the real clock.
	Clock Clock
	// Resolution is the sample spacing the rolling windows retain;
	// window edges snap to it. 0 means 1s. Callers tick at least this
	// often (the serve loop derives its tick from the shortest window).
	Resolution time.Duration
	// WarnFraction is the long-window burn at which an otherwise-OK
	// objective turns WARN. 0 means 0.85.
	WarnFraction float64
}

// maxBurn caps reported burn rates so JSON output stays finite when a
// floor objective observes a zero value.
const maxBurn = 1e6

// sample is one cumulative observation: scalar readings a/b/c for
// ratio/cost/f1 objectives, a bucket-count snapshot for latency ones.
type sample struct {
	at      time.Duration
	a, b, c float64
	buckets []int64
}

// objective is one Spec bound to its cumulative sources plus the
// rolling sample ring.
type objective struct {
	spec Spec
	hist *obs.Histogram  // latency
	fnA  func() float64  // ratio: bad; cost: dollars; f1: tp
	fnB  func() float64  // ratio: total; cost: pairs; f1: fp
	fnC  func() float64  // f1: fn
	ring []sample
	n    int // samples pushed; ring index n-1 is newest
	delta []int64 // scratch for windowed bucket deltas

	state       State
	since       time.Duration
	transitions int64
	last        Status

	// lock-free mirrors for metric exposition
	stateAtomic atomic.Int32
	burnBits    atomic.Uint64 // math.Float64bits of the long-window burn
}

// Engine evaluates a set of objectives on each Tick. A nil *Engine is
// a valid disabled engine: Tick and Snapshot return nil, Worst returns
// OK — serving pays nothing when no SLOs are configured.
type Engine struct {
	clock    Clock
	res      time.Duration
	warnFrac float64

	mu      sync.Mutex
	objs    []*objective
	cbs     []func(Transition)
	scratch []Status

	ticks       atomic.Int64
	transitions atomic.Int64
}

// NewEngine returns an engine with no objectives; bind them with the
// Add* methods before the first Tick.
func NewEngine(cfg Config) *Engine {
	if cfg.Clock == nil {
		cfg.Clock = RealClock()
	}
	if cfg.Resolution <= 0 {
		cfg.Resolution = time.Second
	}
	if cfg.WarnFraction <= 0 {
		cfg.WarnFraction = 0.85
	}
	return &Engine{clock: cfg.Clock, res: cfg.Resolution, warnFrac: cfg.WarnFraction}
}

// Resolution returns the engine's sample spacing.
func (e *Engine) Resolution() time.Duration {
	if e == nil {
		return 0
	}
	return e.res
}

// add validates and registers one objective, sizing its ring to hold
// the long window at the engine resolution.
func (e *Engine) add(o *objective) error {
	cap := int(o.spec.Long/e.res) + 2
	if cap < 3 {
		cap = 3
	}
	o.ring = make([]sample, cap)
	if o.spec.Kind == KindLatency {
		nb := o.hist.NumBuckets()
		if nb == 0 {
			return fmt.Errorf("slo: %s: nil latency histogram", o.spec)
		}
		for i := range o.ring {
			o.ring[i].buckets = make([]int64, 0, nb)
		}
		o.delta = make([]int64, nb)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.objs = append(e.objs, o)
	return nil
}

// AddLatency binds a latency-quantile ceiling to a log2 µs histogram.
func (e *Engine) AddLatency(sp Spec, h *obs.Histogram) error {
	if sp.Kind != KindLatency {
		return fmt.Errorf("slo: %s is not a latency objective", sp)
	}
	return e.add(&objective{spec: sp, hist: h})
}

// AddRatio binds a rate ceiling to two cumulative readers: the windowed
// value is Δbad/Δtotal.
func (e *Engine) AddRatio(sp Spec, bad, total func() float64) error {
	if sp.Kind != KindRatio {
		return fmt.Errorf("slo: %s is not a ratio objective", sp)
	}
	return e.add(&objective{spec: sp, fnA: bad, fnB: total})
}

// AddCost binds a $-per-1K-pairs ceiling: Δdollars*1000/Δpairs.
func (e *Engine) AddCost(sp Spec, dollars, pairs func() float64) error {
	if sp.Kind != KindCost {
		return fmt.Errorf("slo: %s is not a cost objective", sp)
	}
	return e.add(&objective{spec: sp, fnA: dollars, fnB: pairs})
}

// AddF1 binds an F1 floor to cumulative confusion counts; the windowed
// value is F1 of the deltas. Windows with no labeled traffic read as
// "no data" and burn 0.
func (e *Engine) AddF1(sp Spec, tp, fp, fn func() float64) error {
	if sp.Kind != KindF1 {
		return fmt.Errorf("slo: %s is not an f1 objective", sp)
	}
	return e.add(&objective{spec: sp, fnA: tp, fnB: fp, fnC: fn})
}

// Objectives returns the number of bound objectives.
func (e *Engine) Objectives() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.objs)
}

// OnTransition registers a callback fired on every state change, after
// the tick that caused it, outside the engine lock.
func (e *Engine) OnTransition(cb func(Transition)) {
	if e == nil || cb == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cbs = append(e.cbs, cb)
}

// Tick samples every objective's sources at the current clock reading,
// re-evaluates states, and fires transition callbacks. It returns the
// fresh statuses in registration order; the slice is reused by the
// next Tick — copy it to retain. Allocation-free at steady state.
func (e *Engine) Tick() []Status {
	if e == nil {
		return nil
	}
	now := e.clock.Now()
	// fired is local (not engine scratch): its contents outlive the
	// lock, and transitions are rare enough that the allocation on a
	// transition tick is irrelevant — steady-state ticks see none.
	var fired []Transition
	e.mu.Lock()
	e.ticks.Add(1)
	e.scratch = e.scratch[:0]
	for _, o := range e.objs {
		st := e.evaluate(o, now)
		if st.State != o.state {
			o.transitions++
			e.transitions.Add(1)
			st.Transitions = o.transitions
			tr := Transition{Name: o.spec.Name, From: o.state, To: st.State, At: now, Status: st}
			o.state = st.State
			o.since = now
			fired = append(fired, tr)
		}
		st.SinceSec = (now - o.since).Seconds()
		st.Transitions = o.transitions
		o.last = st
		o.stateAtomic.Store(int32(o.state))
		o.burnBits.Store(math.Float64bits(st.BurnLong))
		e.scratch = append(e.scratch, st)
	}
	cbs := e.cbs
	out := e.scratch
	e.mu.Unlock()
	for _, tr := range fired {
		for _, cb := range cbs {
			cb(tr)
		}
	}
	return out
}

// evaluate pushes one cumulative sample for o and scores both windows.
// Called with the engine lock held.
func (e *Engine) evaluate(o *objective, now time.Duration) Status {
	s := &o.ring[o.n%len(o.ring)]
	o.n++
	s.at = now
	switch o.spec.Kind {
	case KindLatency:
		s.buckets = o.hist.BucketCountsInto(s.buckets[:0])
	case KindF1:
		s.a, s.b, s.c = o.fnA(), o.fnB(), o.fnC()
	default: // ratio, cost
		s.a, s.b = o.fnA(), o.fnB()
	}
	cur := s
	vLong := o.windowValue(cur, o.sampleAt(now-o.spec.Long))
	vShort := o.windowValue(cur, o.sampleAt(now-o.spec.Short))
	bLong := o.spec.burn(vLong)
	bShort := o.spec.burn(vShort)
	state := OK
	switch {
	case bLong >= 1 && bShort >= 1:
		state = Breach
	case bShort >= 1 || bLong >= e.warnFrac:
		state = Warn
	}
	return Status{
		Name: o.spec.Name, Spec: o.spec.String(), Kind: o.spec.Kind.String(),
		State: state, Limit: o.spec.Limit,
		LongSec: o.spec.Long.Seconds(), ShortSec: o.spec.Short.Seconds(),
		ValueLong: vLong, ValueShort: vShort, BurnLong: bLong, BurnShort: bShort,
	}
}

// sampleAt returns the newest retained sample observed at or before
// cut, or the oldest retained one when the ring does not reach back
// that far (windows clamp to available history).
func (o *objective) sampleAt(cut time.Duration) *sample {
	n := len(o.ring)
	count := o.n
	if count > n {
		count = n
	}
	var oldest *sample
	for i := 1; i <= count; i++ {
		s := &o.ring[(o.n-i)%n]
		oldest = s
		if s.at <= cut {
			return s
		}
	}
	return oldest
}

// windowValue computes the objective's value over the delta between
// two cumulative samples. Negative return means "no data in window".
func (o *objective) windowValue(cur, old *sample) float64 {
	if old == nil || old == cur {
		return noData(o.spec.Kind)
	}
	switch o.spec.Kind {
	case KindLatency:
		for i := range o.delta {
			d := cur.buckets[i] - old.buckets[i]
			if d < 0 {
				d = 0
			}
			o.delta[i] = d
		}
		return obs.QuantileLog2(o.delta, o.spec.Quantile)
	case KindRatio:
		bad, tot := cur.a-old.a, cur.b-old.b
		if tot <= 0 {
			return 0
		}
		if bad < 0 {
			bad = 0
		}
		return bad / tot
	case KindCost:
		dollars, pairs := cur.a-old.a, cur.b-old.b
		if pairs <= 0 {
			return 0
		}
		if dollars < 0 {
			dollars = 0
		}
		return dollars * 1000 / pairs
	case KindF1:
		tp, fp, fn := cur.a-old.a, cur.b-old.b, cur.c-old.c
		if tp+fp+fn <= 0 {
			return -1 // no labeled traffic in window
		}
		denom := 2*tp + fp + fn
		if denom <= 0 {
			return 0
		}
		return 2 * tp / denom
	}
	return 0
}

// noData is the empty-window value: 0 for ceilings (nothing observed,
// nothing burned), -1 ("no data", burn 0) for floors — a floor must
// not breach just because no labeled traffic arrived.
func noData(k Kind) float64 {
	if k == KindF1 {
		return -1
	}
	return 0
}

// burn maps a windowed value to a burn rate: fraction of the budget
// consumed, ≥1 meaning the objective is violated in that window.
func (sp Spec) burn(v float64) float64 {
	if v < 0 {
		return 0 // no data
	}
	if sp.Floor {
		if sp.Limit <= 0 {
			return 0
		}
		if v <= 0 {
			return maxBurn
		}
		if b := sp.Limit / v; b < maxBurn {
			return b
		}
		return maxBurn
	}
	if sp.Limit <= 0 {
		return 0
	}
	if b := v / sp.Limit; b < maxBurn {
		return b
	}
	return maxBurn
}

// Snapshot returns a copy of the most recent evaluation (empty before
// the first Tick). Safe to retain.
func (e *Engine) Snapshot() []Status {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Status, 0, len(e.objs))
	for _, o := range e.objs {
		out = append(out, o.last)
	}
	return out
}

// Worst returns the worst state across objectives (OK when disabled).
func (e *Engine) Worst() State {
	if e == nil {
		return OK
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	worst := OK
	for _, o := range e.objs {
		if o.state > worst {
			worst = o.state
		}
	}
	return worst
}

// Ticks returns how many evaluations have run.
func (e *Engine) Ticks() int64 {
	if e == nil {
		return 0
	}
	return e.ticks.Load()
}

// Transitions returns the total state changes across objectives.
func (e *Engine) Transitions() int64 {
	if e == nil {
		return 0
	}
	return e.transitions.Load()
}

// RegisterMetrics exposes per-objective gauges on reg:
// slo_<name>_state (0 OK / 1 WARN / 2 BREACH), slo_<name>_burn_long,
// plus slo_worst_state and slo_transitions_total. Reads are lock-free
// (atomic mirrors updated by Tick).
func (e *Engine) RegisterMetrics(reg *obs.Registry) {
	if e == nil || reg == nil {
		return
	}
	e.mu.Lock()
	objs := append([]*objective(nil), e.objs...)
	e.mu.Unlock()
	for _, o := range objs {
		o := o
		base := "slo_" + sanitizeMetric(o.spec.Name)
		reg.GaugeFunc(base+"_state", "SLO state of "+o.spec.String()+" (0 OK, 1 WARN, 2 BREACH)",
			func() float64 { return float64(o.stateAtomic.Load()) })
		reg.GaugeFunc(base+"_burn_long", "long-window burn rate of "+o.spec.String(),
			func() float64 { return math.Float64frombits(o.burnBits.Load()) })
	}
	reg.GaugeFunc("slo_worst_state", "worst SLO state across objectives", func() float64 {
		worst := int32(0)
		for _, o := range objs {
			if s := o.stateAtomic.Load(); s > worst {
				worst = s
			}
		}
		return float64(worst)
	})
	reg.CounterFunc("slo_transitions_total", "SLO state transitions", func() float64 {
		return float64(e.transitions.Load())
	})
}

// sanitizeMetric maps an objective name into the metric-name alphabet.
func sanitizeMetric(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_':
		case c >= 'A' && c <= 'Z':
			b[i] = c + ('a' - 'A')
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// FormatStatus renders one status as a fixed-width dashboard line —
// shared by emserve's loadgen report and emwatch.
func FormatStatus(st Status) string {
	sp := Spec{Kind: kindFromString(st.Kind), Floor: st.Kind == "f1"}
	return fmt.Sprintf("%-28s %-6s long %s (burn %.2f)  short %s (burn %.2f)",
		st.Spec, st.State, sp.FormatValue(st.ValueLong), st.BurnLong,
		sp.FormatValue(st.ValueShort), st.BurnShort)
}

func kindFromString(s string) Kind {
	switch s {
	case "latency":
		return KindLatency
	case "ratio":
		return KindRatio
	case "cost":
		return KindCost
	case "f1":
		return KindF1
	}
	return KindRatio
}
