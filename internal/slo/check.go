package slo

import (
	"fmt"
	"strings"
)

// Measures is a one-shot summary of a finished run (a loadgen replay,
// one emroute sweep arm), checked against specs without windowing —
// the batch counterpart of the Engine for `-slo-assert` flags.
type Measures struct {
	LatencyP50US float64
	LatencyP95US float64
	LatencyP99US float64
	ShedRate     float64 // shed requests / total requests
	ErrorRate    float64 // errored requests / total requests
	CostPer1K    float64 // dollars per 1000 scored pairs
	F1           float64
	HasF1        bool // false when the run had no labels
}

// Violation is one objective a run failed.
type Violation struct {
	Spec  Spec
	Value float64
}

// String renders "p99 = 12ms exceeds 5ms"-style messages.
func (v Violation) String() string {
	rel := "exceeds"
	if v.Spec.Floor {
		rel = "below floor"
	}
	return fmt.Sprintf("%s = %s %s %s", v.Spec.Name,
		v.Spec.FormatValue(v.Value), rel, v.Spec.FormatValue(v.Spec.Limit))
}

// Check evaluates every spec against m and returns the violations.
// Latency objectives support the quantiles Measures carries (p50, p95,
// p99); other quantiles are an error. F1 floors are skipped (not
// violated) when the run was unlabeled.
func Check(specs []Spec, m Measures) ([]Violation, error) {
	var out []Violation
	for _, sp := range specs {
		var v float64
		switch sp.Kind {
		case KindLatency:
			switch sp.Quantile {
			case 0.50:
				v = m.LatencyP50US
			case 0.95:
				v = m.LatencyP95US
			case 0.99:
				v = m.LatencyP99US
			default:
				return nil, fmt.Errorf("slo: %s: one-shot checks support p50/p95/p99 only", sp)
			}
		case KindRatio:
			if sp.Name == "error" {
				v = m.ErrorRate
			} else {
				v = m.ShedRate
			}
		case KindCost:
			v = m.CostPer1K
		case KindF1:
			if !m.HasF1 {
				continue
			}
			v = m.F1
		}
		if sp.Floor {
			if v < sp.Limit {
				out = append(out, Violation{Spec: sp, Value: v})
			}
		} else if v > sp.Limit {
			out = append(out, Violation{Spec: sp, Value: v})
		}
	}
	return out, nil
}

// FormatViolations joins violations for error messages.
func FormatViolations(vs []Violation) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return strings.Join(parts, "; ")
}
