package slo

import (
	"encoding/json"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func mustSpec(t *testing.T, s string) Spec {
	t.Helper()
	sp, err := ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// The core state machine: a ratio objective walks OK → WARN (short
// window hot) → BREACH (both windows hot) → OK (budget recovers) on a
// virtual clock, entirely deterministically.
func TestEngineBurnRateStates(t *testing.T) {
	vc := &VirtualClock{}
	e := NewEngine(Config{Clock: vc, Resolution: time.Second})
	var bad, total atomic.Int64
	if err := e.AddRatio(mustSpec(t, "shed<=10%@30s/5s"),
		func() float64 { return float64(bad.Load()) },
		func() float64 { return float64(total.Load()) }); err != nil {
		t.Fatal(err)
	}
	var trs []Transition
	e.OnTransition(func(tr Transition) { trs = append(trs, tr) })

	step := func(dBad, dTotal int64, adv time.Duration) State {
		bad.Add(dBad)
		total.Add(dTotal)
		vc.Advance(adv)
		sts := e.Tick()
		if len(sts) != 1 {
			t.Fatalf("got %d statuses", len(sts))
		}
		return sts[0].State
	}

	// Clean traffic for 10s: OK.
	for i := 0; i < 10; i++ {
		if st := step(0, 100, time.Second); st != OK {
			t.Fatalf("clean tick %d: state %v, want OK", i, st)
		}
	}
	// A hot burst: the short 5s window sees 50% shed immediately (WARN);
	// once the 30s window's aggregate crosses 10%, BREACH.
	st := step(50, 100, time.Second)
	if st != Warn {
		t.Fatalf("after burst: state %v, want WARN (short window hot)", st)
	}
	for i := 0; st != Breach && i < 10; i++ {
		st = step(50, 100, time.Second)
	}
	if st != Breach {
		t.Fatal("sustained burn never breached")
	}
	if e.Worst() != Breach {
		t.Fatalf("Worst = %v, want BREACH", e.Worst())
	}
	// Recovery: clean traffic until both windows drain.
	for i := 0; st != OK && i < 40; i++ {
		st = step(0, 100, time.Second)
	}
	if st != OK {
		t.Fatal("never recovered to OK")
	}
	// Transition log: OK→WARN→BREACH→(WARN)→OK with sane fields.
	if len(trs) < 3 {
		t.Fatalf("got %d transitions: %+v", len(trs), trs)
	}
	if trs[0].From != OK || trs[0].To != Warn || trs[0].Name != "shed" {
		t.Fatalf("first transition = %+v", trs[0])
	}
	if trs[1].To != Breach || trs[1].Status.BurnLong < 1 || trs[1].Status.BurnShort < 1 {
		t.Fatalf("breach transition = %+v", trs[1])
	}
	if last := trs[len(trs)-1]; last.To != OK {
		t.Fatalf("last transition = %+v", last)
	}
	if e.Transitions() != int64(len(trs)) {
		t.Fatalf("Transitions() = %d, want %d", e.Transitions(), len(trs))
	}
}

// Latency objectives window a histogram by differencing bucket
// snapshots: old slow traffic must stop mattering once it leaves the
// long window.
func TestEngineLatencyWindowing(t *testing.T) {
	vc := &VirtualClock{}
	e := NewEngine(Config{Clock: vc, Resolution: time.Second})
	reg := obs.NewRegistry()
	h := reg.Log2Histogram("lat_us", "")
	if err := e.AddLatency(mustSpec(t, "p99<=1ms@10s/2s"), h); err != nil {
		t.Fatal(err)
	}
	e.Tick() // baseline sample at t=0
	// Slow traffic: 100 observations of 8ms.
	for i := 0; i < 100; i++ {
		h.Observe(8000)
	}
	vc.Advance(time.Second)
	st := e.Tick()[0]
	if st.State != Breach || st.ValueShort < 4000 {
		t.Fatalf("slow traffic: %+v, want BREACH with p99 ≈ 8ms", st)
	}
	// Fast traffic only from now on: after the long window passes, OK.
	for i := 0; i < 12; i++ {
		for j := 0; j < 100; j++ {
			h.Observe(100)
		}
		vc.Advance(time.Second)
		e.Tick()
	}
	final := e.Snapshot()[0]
	if final.State != OK || final.ValueLong >= 1000 {
		t.Fatalf("after recovery: %+v, want OK with p99 < 1ms", final)
	}
}

// F1 floors burn only on labeled traffic: empty windows are "no data",
// not a breach.
func TestEngineF1Floor(t *testing.T) {
	vc := &VirtualClock{}
	e := NewEngine(Config{Clock: vc, Resolution: time.Second})
	var tp, fp, fn atomic.Int64
	load := func(c *atomic.Int64) func() float64 {
		return func() float64 { return float64(c.Load()) }
	}
	if err := e.AddF1(mustSpec(t, "f1>=0.8@10s/2s"), load(&tp), load(&fp), load(&fn)); err != nil {
		t.Fatal(err)
	}
	// No labels at all: stays OK.
	for i := 0; i < 5; i++ {
		vc.Advance(time.Second)
		if st := e.Tick()[0]; st.State != OK || st.BurnLong != 0 {
			t.Fatalf("unlabeled tick: %+v", st)
		}
	}
	// Good labels: F1 = 1, OK.
	tp.Add(80)
	vc.Advance(time.Second)
	if st := e.Tick()[0]; st.State != OK || st.ValueShort != 1 {
		t.Fatalf("good labels: %+v", st)
	}
	// Quality collapse: all false positives.
	fp.Add(500)
	vc.Advance(time.Second)
	st := e.Tick()[0]
	if st.BurnShort < 1 {
		t.Fatalf("collapse not burning: %+v", st)
	}
	for i := 0; st.State != Breach && i < 10; i++ {
		fp.Add(500)
		vc.Advance(time.Second)
		st = e.Tick()[0]
	}
	if st.State != Breach {
		t.Fatal("quality collapse never breached")
	}
	if st.BurnShort > maxBurn {
		t.Fatalf("burn uncapped: %v", st.BurnShort)
	}
}

// Determinism pin (acceptance criterion): two engines fed the same
// scripted traffic on virtual clocks produce byte-identical status
// sequences.
func TestEngineDeterministicOnVirtualClock(t *testing.T) {
	run := func() []byte {
		vc := &VirtualClock{}
		e := NewEngine(Config{Clock: vc, Resolution: 500 * time.Millisecond})
		reg := obs.NewRegistry()
		h := reg.Log2Histogram("lat_us", "")
		var shed, reqs, dollars, pairs atomic.Int64
		if err := e.AddLatency(mustSpec(t, "p99<=2ms@20s/4s"), h); err != nil {
			t.Fatal(err)
		}
		if err := e.AddRatio(mustSpec(t, "shed<=5%@20s/4s"),
			func() float64 { return float64(shed.Load()) },
			func() float64 { return float64(reqs.Load()) }); err != nil {
			t.Fatal(err)
		}
		if err := e.AddCost(mustSpec(t, "cost<=0.5@20s/4s"),
			func() float64 { return float64(dollars.Load()) / 1e6 },
			func() float64 { return float64(pairs.Load()) }); err != nil {
			t.Fatal(err)
		}
		var out []byte
		// Scripted load: phase i drives deterministic traffic shapes.
		for i := 0; i < 120; i++ {
			lat := int64(200 + (i%7)*900)
			if i > 40 && i < 80 {
				lat *= 20 // slow phase
			}
			h.Observe(lat)
			reqs.Add(10)
			if i%3 == 0 {
				shed.Add(int64(i % 5))
			}
			pairs.Add(100)
			dollars.Add(int64(i * 40)) // micro-dollars
			vc.Advance(500 * time.Millisecond)
			b, err := json.Marshal(e.Tick())
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, b...)
			out = append(out, '\n')
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical scripted runs produced different status streams")
	}
	// The script must actually exercise the state machine.
	if !strings.Contains(string(a), `"state":"breach"`) || !strings.Contains(string(a), `"state":"ok"`) {
		t.Fatal("script never breached or never recovered — not a meaningful determinism pin")
	}
}

func TestEngineNilAndErrors(t *testing.T) {
	var e *Engine
	if e.Tick() != nil || e.Snapshot() != nil || e.Worst() != OK || e.Objectives() != 0 {
		t.Fatal("nil engine must be disabled")
	}
	e.RegisterMetrics(obs.NewRegistry())
	e.OnTransition(func(Transition) {})

	live := NewEngine(Config{Clock: &VirtualClock{}})
	if err := live.AddRatio(mustSpec(t, "p99<=5ms"), nil, nil); err == nil {
		t.Fatal("AddRatio accepted a latency spec")
	}
	if err := live.AddLatency(mustSpec(t, "shed<=1%"), nil); err == nil {
		t.Fatal("AddLatency accepted a ratio spec")
	}
	if err := live.AddLatency(mustSpec(t, "p99<=5ms"), nil); err == nil {
		t.Fatal("AddLatency accepted a nil histogram")
	}
}

func TestEngineMetricsExposition(t *testing.T) {
	vc := &VirtualClock{}
	e := NewEngine(Config{Clock: vc, Resolution: time.Second})
	var bad, total atomic.Int64
	if err := e.AddRatio(mustSpec(t, "shed<=10%@10s/2s"),
		func() float64 { return float64(bad.Load()) },
		func() float64 { return float64(total.Load()) }); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	e.RegisterMetrics(reg)
	bad.Add(50)
	total.Add(100)
	vc.Advance(time.Second)
	e.Tick()
	vc.Advance(time.Second)
	e.Tick()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"slo_shed_state", "slo_shed_burn_long", "slo_worst_state", "slo_transitions_total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestStateJSONRoundTrip(t *testing.T) {
	for _, s := range []State{OK, Warn, Breach} {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var got State
		if err := json.Unmarshal(b, &got); err != nil || got != s {
			t.Fatalf("state %v round trip → %v, %v", s, got, err)
		}
	}
	var s State
	if err := json.Unmarshal([]byte(`"BREACH"`), &s); err != nil || s != Breach {
		t.Fatalf("display-name unmarshal → %v, %v", s, err)
	}
	if err := json.Unmarshal([]byte(`"meh"`), &s); err == nil {
		t.Fatal("unknown state accepted")
	}
}

func TestFormatStatus(t *testing.T) {
	st := Status{Spec: "p99<=5ms", Kind: "latency", State: Breach,
		ValueLong: 12000, ValueShort: 13000, BurnLong: 2.4, BurnShort: 2.6}
	line := FormatStatus(st)
	for _, want := range []string{"p99<=5ms", "BREACH", "12ms", "burn 2.40"} {
		if !strings.Contains(line, want) {
			t.Fatalf("FormatStatus missing %q: %s", want, line)
		}
	}
}
