package slo

import (
	"testing"
	"time"
)

func TestParseSpecs(t *testing.T) {
	specs, err := ParseSpecs("p99<=5ms, shed<=1%@30s/5s, error<=0.5%, cost<=$0.25, f1>=0.7")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 5 {
		t.Fatalf("got %d specs, want 5", len(specs))
	}
	p99 := specs[0]
	if p99.Kind != KindLatency || p99.Quantile != 0.99 || p99.Limit != 5000 {
		t.Fatalf("p99 spec = %+v", p99)
	}
	if p99.Long != time.Minute || p99.Short != 10*time.Second {
		t.Fatalf("default windows = %v/%v", p99.Long, p99.Short)
	}
	shed := specs[1]
	if shed.Kind != KindRatio || shed.Limit != 0.01 || shed.Long != 30*time.Second || shed.Short != 5*time.Second {
		t.Fatalf("shed spec = %+v", shed)
	}
	if e := specs[2]; e.Name != "error" || e.Limit != 0.005 {
		t.Fatalf("error spec = %+v", e)
	}
	if c := specs[3]; c.Kind != KindCost || c.Limit != 0.25 {
		t.Fatalf("cost spec = %+v", c)
	}
	if f := specs[4]; f.Kind != KindF1 || !f.Floor || f.Limit != 0.7 {
		t.Fatalf("f1 spec = %+v", f)
	}
}

func TestParseSpecVariants(t *testing.T) {
	// Bare latency numbers mean milliseconds; durations pass through.
	sp, err := ParseSpec("p50<=2")
	if err != nil || sp.Limit != 2000 {
		t.Fatalf("p50<=2 → %+v, %v", sp, err)
	}
	sp, err = ParseSpec("p95<=250us")
	if err != nil || sp.Limit != 250 {
		t.Fatalf("p95<=250us → %+v, %v", sp, err)
	}
	// Bare fractions for ratios.
	sp, err = ParseSpec("shed<=0.02")
	if err != nil || sp.Limit != 0.02 {
		t.Fatalf("shed<=0.02 → %+v, %v", sp, err)
	}
	// Long-only window derives short = long/6.
	sp, err = ParseSpec("p99<=5ms@1m")
	if err != nil || sp.Long != time.Minute || sp.Short != 10*time.Second {
		t.Fatalf("@1m → %+v, %v", sp, err)
	}
	// Fractional quantiles parse.
	sp, err = ParseSpec("p99.9<=100ms")
	if err != nil || sp.Quantile < 0.9989 || sp.Quantile > 0.9991 {
		t.Fatalf("p99.9 → %+v, %v", sp, err)
	}
}

func TestParseSpecRejects(t *testing.T) {
	for _, bad := range []string{
		"",
		"p99",            // no operator
		"p99>=5ms",       // ceiling with floor operator
		"f1<=0.7",        // floor with ceiling operator
		"f1>=1.5",        // out of range
		"frobs<=1",       // unknown objective
		"shed<=2",        // ratio above 1 without %
		"p99<=0ms",       // non-positive limit
		"p0<=5ms",        // quantile out of range
		"p200<=5ms",      // quantile out of range
		"p99<=5ms@5s/5s", // short not below long
		"p99<=5ms@x/1s",  // malformed window
		"cost<=-1",       // negative budget
	} {
		if _, err := ParseSpecs(bad); err == nil {
			t.Fatalf("ParseSpecs(%q) accepted invalid input", bad)
		}
	}
}

func TestCheckMeasures(t *testing.T) {
	specs, err := ParseSpecs("p99<=5ms,shed<=1%,cost<=0.25,f1>=0.7")
	if err != nil {
		t.Fatal(err)
	}
	ok := Measures{LatencyP99US: 4000, ShedRate: 0.001, CostPer1K: 0.1, F1: 0.75, HasF1: true}
	if vs, err := Check(specs, ok); err != nil || len(vs) != 0 {
		t.Fatalf("clean measures violated: %v, %v", vs, err)
	}
	bad := Measures{LatencyP99US: 9000, ShedRate: 0.05, CostPer1K: 1.5, F1: 0.4, HasF1: true}
	vs, err := Check(specs, bad)
	if err != nil || len(vs) != 4 {
		t.Fatalf("violations = %v, %v; want all 4", vs, err)
	}
	if FormatViolations(vs) == "" {
		t.Fatal("empty violation message")
	}
	// Unlabeled runs skip the F1 floor.
	vs, err = Check(specs, Measures{LatencyP99US: 1, HasF1: false})
	if err != nil || len(vs) != 0 {
		t.Fatalf("unlabeled run flagged: %v, %v", vs, err)
	}
	// Unsupported quantile in one-shot mode is a hard error.
	p90, err := ParseSpecs("p90<=5ms")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(p90, ok); err == nil {
		t.Fatal("Check accepted p90 one-shot")
	}
}
