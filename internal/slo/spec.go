// Package slo evaluates declarative service-level objectives over the
// repository's obs metrics using multi-window burn rates: each
// objective watches a long and a short rolling window of a cumulative
// counter/histogram, computes burn = observed/limit per window, and
// reports OK, WARN (short window hot, or long window approaching its
// budget) or BREACH (both windows over budget — the SRE-style
// fast-and-sustained condition that filters out blips). The engine is
// driven by an injectable Clock, so the whole state machine is
// deterministic under a VirtualClock; transition callbacks feed
// admission control and the flight-recorder dumper in internal/serve.
package slo

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Kind classifies what an objective measures.
type Kind uint8

const (
	// KindLatency is a latency-quantile ceiling over a log2 µs histogram
	// (p50<=2ms, p99<=50ms).
	KindLatency Kind = iota
	// KindRatio is a bad/total rate ceiling (shed<=1%, error<=0.5%).
	KindRatio
	// KindCost is a routed-dollars budget per 1000 scored pairs
	// (cost<=0.25).
	KindCost
	// KindF1 is a quality floor on labeled traffic (f1>=0.7).
	KindF1
)

// String returns the kind's stable name.
func (k Kind) String() string {
	switch k {
	case KindLatency:
		return "latency"
	case KindRatio:
		return "ratio"
	case KindCost:
		return "cost"
	case KindF1:
		return "f1"
	}
	return "kind_" + strconv.Itoa(int(k))
}

// Spec is one parsed objective.
//
// Grammar (ParseSpecs accepts a comma-separated list):
//
//	p50<=2ms            latency quantile ceiling (duration, or bare ms)
//	p99<=50ms@30s/5s    ... with explicit long/short windows
//	shed<=1%            shed-rate ceiling (percent or fraction)
//	error<=0.5%         error-rate ceiling
//	cost<=0.25          routed $ per 1K scored pairs ceiling
//	f1>=0.7             F1 floor (labeled traffic only)
//
// The window suffix is `@LONG/SHORT`; `@LONG` alone derives
// SHORT = LONG/6 (the classic 5m/1h ratio). Defaults: 1m/10s.
type Spec struct {
	Name     string        // objective name: "p99", "shed", "error", "cost", "f1"
	Kind     Kind          // what Limit bounds
	Quantile float64       // latency only: 0.99 for p99
	Limit    float64       // µs (latency), fraction (ratio), $/1K (cost), floor (f1)
	Floor    bool          // true when Limit is a floor (f1>=) rather than a ceiling
	Long     time.Duration // sustained burn window
	Short    time.Duration // fast burn window
	Raw      string        // the original token, for display
}

// String returns the original spec token.
func (sp Spec) String() string {
	if sp.Raw != "" {
		return sp.Raw
	}
	op := "<="
	if sp.Floor {
		op = ">="
	}
	return fmt.Sprintf("%s%s%s@%s/%s", sp.Name, op, sp.FormatValue(sp.Limit), sp.Long, sp.Short)
}

// FormatValue renders a measured value in the objective's natural unit.
func (sp Spec) FormatValue(v float64) string {
	switch sp.Kind {
	case KindLatency:
		return time.Duration(v * float64(time.Microsecond)).Round(time.Microsecond).String()
	case KindRatio:
		return strconv.FormatFloat(v*100, 'g', 4, 64) + "%"
	case KindCost:
		return "$" + strconv.FormatFloat(v, 'g', 4, 64) + "/1K"
	default:
		return strconv.FormatFloat(v, 'g', 4, 64)
	}
}

// ParseSpecs parses a comma-separated objective list.
func ParseSpecs(s string) ([]Spec, error) {
	var out []Spec
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		sp, err := ParseSpec(tok)
		if err != nil {
			return nil, err
		}
		out = append(out, sp)
	}
	if len(out) == 0 {
		return nil, errors.New("slo: empty objective list")
	}
	return out, nil
}

// ParseSpec parses one objective token.
func ParseSpec(tok string) (Spec, error) {
	sp := Spec{Raw: tok, Long: time.Minute, Short: 10 * time.Second}
	body := tok
	if i := strings.IndexByte(tok, '@'); i >= 0 {
		body = tok[:i]
		if err := sp.parseWindows(tok[i+1:]); err != nil {
			return Spec{}, err
		}
	}
	op := "<="
	idx := strings.Index(body, "<=")
	if idx < 0 {
		idx = strings.Index(body, ">=")
		op = ">="
	}
	if idx < 0 {
		return Spec{}, fmt.Errorf("slo: %q: want NAME<=LIMIT or NAME>=LIMIT", tok)
	}
	sp.Name = strings.ToLower(strings.TrimSpace(body[:idx]))
	val := strings.TrimSpace(body[idx+2:])
	var err error
	switch {
	case len(sp.Name) > 1 && sp.Name[0] == 'p' && isNumeric(sp.Name[1:]):
		sp.Kind = KindLatency
		var q float64
		if q, err = strconv.ParseFloat(sp.Name[1:], 64); err == nil && (q <= 0 || q >= 100) {
			err = fmt.Errorf("quantile %v out of (0, 100)", q)
		}
		sp.Quantile = q / 100
		if err == nil {
			sp.Limit, err = parseLatencyUS(val)
		}
	case sp.Name == "shed" || sp.Name == "error":
		sp.Kind = KindRatio
		sp.Limit, err = parseRatio(val)
	case sp.Name == "cost":
		sp.Kind = KindCost
		sp.Limit, err = strconv.ParseFloat(strings.TrimPrefix(val, "$"), 64)
	case sp.Name == "f1":
		sp.Kind = KindF1
		sp.Floor = true
		if sp.Limit, err = strconv.ParseFloat(val, 64); err == nil && (sp.Limit <= 0 || sp.Limit > 1) {
			err = fmt.Errorf("f1 floor %v out of (0, 1]", sp.Limit)
		}
	default:
		return Spec{}, fmt.Errorf("slo: %q: unknown objective %q (want pNN, shed, error, cost, f1)", tok, sp.Name)
	}
	if err != nil {
		return Spec{}, fmt.Errorf("slo: %q: %w", tok, err)
	}
	if sp.Floor != (op == ">=") {
		if sp.Floor {
			return Spec{}, fmt.Errorf("slo: %q: f1 is a floor, use >=", tok)
		}
		return Spec{}, fmt.Errorf("slo: %q: %s is a ceiling, use <=", tok, sp.Name)
	}
	if !sp.Floor && sp.Limit <= 0 {
		return Spec{}, fmt.Errorf("slo: %q: limit must be positive", tok)
	}
	return sp, nil
}

func (sp *Spec) parseWindows(w string) error {
	long, short, ok := strings.Cut(w, "/")
	d, err := time.ParseDuration(long)
	if err != nil || d <= 0 {
		return fmt.Errorf("slo: bad long window %q", long)
	}
	sp.Long = d
	if ok {
		ds, err := time.ParseDuration(short)
		if err != nil || ds <= 0 {
			return fmt.Errorf("slo: bad short window %q", short)
		}
		sp.Short = ds
	} else {
		sp.Short = d / 6
	}
	if sp.Short >= sp.Long {
		return fmt.Errorf("slo: short window %v must be below long window %v", sp.Short, sp.Long)
	}
	return nil
}

// parseLatencyUS accepts a Go duration ("5ms", "250us") or a bare
// number meaning milliseconds, returning microseconds.
func parseLatencyUS(val string) (float64, error) {
	if d, err := time.ParseDuration(val); err == nil {
		if d <= 0 {
			return 0, fmt.Errorf("latency limit %v must be positive", d)
		}
		return float64(d) / float64(time.Microsecond), nil
	}
	ms, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, fmt.Errorf("bad latency limit %q", val)
	}
	return ms * 1000, nil
}

// parseRatio accepts "1%", "0.5%" or a bare fraction "0.01".
func parseRatio(val string) (float64, error) {
	if p, ok := strings.CutSuffix(val, "%"); ok {
		f, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return 0, fmt.Errorf("bad percentage %q", val)
		}
		return f / 100, nil
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, fmt.Errorf("bad ratio %q", val)
	}
	if f > 1 {
		return 0, fmt.Errorf("ratio %v above 1 — did you mean %q?", f, val+"%")
	}
	return f, nil
}

func isNumeric(s string) bool {
	dot := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '.' && !dot {
			dot = true
			continue
		}
		if c < '0' || c > '9' {
			return false
		}
	}
	return len(s) > 0
}
