package datasets

import (
	"fmt"
	"strings"

	"repro/internal/record"
	"repro/internal/stats"
)

// entity holds the canonical attribute values of one real-world entity,
// before source-specific formatting and corruption produce the two record
// views.
type entity []string

// spec defines one benchmark dataset: its published statistics, its entity
// factory, its hard-negative mutator, and its difficulty profile.
type spec struct {
	name     string
	fullName string
	domain   string
	schema   record.Schema
	pos      int
	neg      int

	// cleanProfile corrupts the left view (the cleaner source), dirtyProfile
	// the right view (the messier source).
	cleanProfile CorruptionProfile
	dirtyProfile CorruptionProfile

	// hardNegRatio is the fraction of negatives built by mutating an entity
	// into a confusable sibling instead of pairing independent entities.
	hardNegRatio float64

	// relatedNegRatio is the fraction of negatives built from independent
	// entities that share categorical context (same venue, city, brand...),
	// simulating the blocking step that produced the candidate set: blocked
	// negatives always share surface tokens with their counterpart.
	relatedNegRatio float64

	// sharedOnRelated lists the attribute indices copied from the left
	// entity when building a related negative. Only categorical,
	// non-identifying attributes belong here.
	sharedOnRelated []int

	// gen draws a fresh canonical entity. The serial parameter is unique
	// per entity and must be woven into at least one discriminative value
	// so that entities are never accidental duplicates.
	gen func(rng *stats.RNG, serial int) entity

	// mutate turns an entity into a hard negative sibling: most values
	// stay, a discriminative one changes.
	mutate func(e entity, rng *stats.RNG, serial int) entity

	// rightStyle optionally reformats canonical values for the right
	// source (author initials, phone punctuation, ...) before corruption.
	rightStyle func(vals entity, rng *stats.RNG) entity
}

func pick(rng *stats.RNG, pool []string) string {
	return pool[rng.Intn(len(pool))]
}

// pickN draws n distinct entries from pool.
func pickN(rng *stats.RNG, pool []string, n int) []string {
	idx := rng.Sample(len(pool), n)
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

func clone(e entity) entity {
	return append(entity(nil), e...)
}

// modelNumber builds a discriminative alphanumeric identifier that encodes
// the entity serial, guaranteeing uniqueness.
func modelNumber(rng *stats.RNG, serial int) string {
	letters := "abcdefghjkmnpqrstuvwx"
	l1 := letters[rng.Intn(len(letters))]
	l2 := letters[rng.Intn(len(letters))]
	return fmt.Sprintf("%c%c-%d%02d", l1, l2, serial%997, rng.Intn(100))
}

func personName(rng *stats.RNG) string {
	return pick(rng, firstNames) + " " + pick(rng, lastNames)
}

// authorList renders n full author names joined with "and".
func authorList(rng *stats.RNG, n int) string {
	names := make([]string, n)
	for i := range names {
		names[i] = personName(rng)
	}
	return strings.Join(names, " and ")
}

// initialsStyle rewrites "john smith and mei chen" as "j. smith, m. chen",
// the classic DBLP-vs-ACM author formatting difference.
func initialsStyle(authors string) string {
	parts := strings.Split(authors, " and ")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		words := strings.Fields(p)
		if len(words) < 2 {
			out = append(out, p)
			continue
		}
		out = append(out, fmt.Sprintf("%c. %s", words[0][0], words[len(words)-1]))
	}
	return strings.Join(out, ", ")
}

func titleWords(rng *stats.RNG, n int) string {
	return strings.Join(pickN(rng, csTopics, n), " ")
}

func phoneNumber(rng *stats.RNG, serial int) string {
	return fmt.Sprintf("%03d-555-%04d", 200+serial%700, rng.Intn(10000))
}

// rewritePhone renders a phone number in the alternative punctuation style.
func rewritePhone(p string) string {
	parts := strings.Split(p, "-")
	if len(parts) != 3 {
		return p
	}
	return fmt.Sprintf("(%s) %s-%s", parts[0], parts[1], parts[2])
}

func price(rng *stats.RNG, lo, hi float64) string {
	v := lo + rng.Float64()*(hi-lo)
	return fmt.Sprintf("$%.2f", v)
}

func year(rng *stats.RNG, lo, hi int) string {
	return fmt.Sprintf("%d", lo+rng.Intn(hi-lo+1))
}

// descriptionFor builds a product description from the title plus category
// and filler text; length controls noise mass.
func descriptionFor(title string, rng *stats.RNG, filler int) string {
	parts := []string{title, pick(rng, webProductCategories)}
	for i := 0; i < filler; i++ {
		parts = append(parts, marketingFiller[rng.Intn(len(marketingFiller))])
	}
	return strings.Join(parts, " ")
}
