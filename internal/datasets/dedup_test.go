package datasets

import (
	"strings"
	"testing"
)

func TestDedupCorpusExactSizeAndTruth(t *testing.T) {
	for _, n := range []int{1, 2, 37, 1000} {
		c := GenerateDedupCorpus(n, 5, 0)
		if len(c.Records) != n {
			t.Fatalf("n=%d: got %d records", n, len(c.Records))
		}
		if len(c.Truth) != n {
			t.Fatalf("n=%d: truth has %d entries", n, len(c.Truth))
		}
		entities := make(map[string]int)
		for _, r := range c.Records {
			e, ok := c.Truth[r.ID]
			if !ok {
				t.Fatalf("record %s missing from truth", r.ID)
			}
			// The entity key is recoverable from the ID prefix; both paths
			// must agree.
			want := "e" + strings.SplitN(strings.TrimPrefix(r.ID, "d"), "-", 2)[0]
			if e != want {
				t.Fatalf("record %s: truth %s, ID implies %s", r.ID, e, want)
			}
			entities[e]++
			if len(r.Values) != len(c.Schema.Names) {
				t.Fatalf("record %s has %d values, schema %d", r.ID, len(r.Values), len(c.Schema.Names))
			}
		}
		if len(entities) != c.Entities {
			t.Fatalf("n=%d: %d distinct entities, reported %d", n, len(entities), c.Entities)
		}
	}
}

func TestDedupCorpusDeterministicAcrossWorkers(t *testing.T) {
	base := GenerateDedupCorpus(3000, 9, 1)
	for _, workers := range []int{2, 8} {
		c := GenerateDedupCorpus(3000, 9, workers)
		if len(c.Records) != len(base.Records) {
			t.Fatalf("workers=%d: size differs", workers)
		}
		for i := range c.Records {
			if c.Records[i].ID != base.Records[i].ID {
				t.Fatalf("workers=%d: record %d is %s, want %s", workers, i, c.Records[i].ID, base.Records[i].ID)
			}
			for a := range c.Records[i].Values {
				if c.Records[i].Values[a] != base.Records[i].Values[a] {
					t.Fatalf("workers=%d: record %s attr %d differs:\n  %q\n  %q",
						workers, c.Records[i].ID, a, c.Records[i].Values[a], base.Records[i].Values[a])
				}
			}
		}
	}
}

func TestDedupCorpusSeedsDiffer(t *testing.T) {
	a := GenerateDedupCorpus(500, 1, 0)
	b := GenerateDedupCorpus(500, 2, 0)
	same := 0
	for i := range a.Records {
		if a.Records[i].Values[0] == b.Records[i].Values[0] {
			same++
		}
	}
	if same > 50 {
		t.Fatalf("seeds 1 and 2 share %d/500 titles", same)
	}
}

func TestDedupCorpusShuffled(t *testing.T) {
	c := GenerateDedupCorpus(2000, 3, 0)
	adjacentDups := 0
	for i := 1; i < len(c.Records); i++ {
		if c.Truth[c.Records[i].ID] == c.Truth[c.Records[i-1].ID] {
			adjacentDups++
		}
	}
	// Generation order would put every duplicate next to its sibling;
	// after the shuffle only a few collisions should remain.
	if adjacentDups > 40 {
		t.Fatalf("%d adjacent duplicate pairs — corpus not shuffled", adjacentDups)
	}
}

func TestDedupTruthPairs(t *testing.T) {
	c := GenerateDedupCorpus(1000, 7, 0)
	pairs := c.TruthPairs()
	if len(pairs) == 0 {
		t.Fatal("corpus has no duplicate pairs")
	}
	for k := range pairs {
		if c.Truth[k[0]] != c.Truth[k[1]] {
			t.Fatalf("truth pair %v spans entities %s and %s", k, c.Truth[k[0]], c.Truth[k[1]])
		}
		if pairs[[2]string{k[1], k[0]}] && k[0] != k[1] {
			t.Fatalf("pair %v present in both orientations", k)
		}
	}
	// Sum over entity sizes must reproduce the pair count.
	sizes := make(map[string]int)
	for _, e := range c.Truth {
		sizes[e]++
	}
	want := 0
	for _, s := range sizes {
		want += s * (s - 1) / 2
	}
	if len(pairs) != want {
		t.Fatalf("%d truth pairs, entity sizes imply %d", len(pairs), want)
	}
}
