package datasets

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/record"
	"repro/internal/stats"
)

// publishedStats is Table 1 of the paper; the generators must reproduce it
// exactly.
var publishedStats = []struct {
	name   string
	domain string
	attrs  int
	pos    int
	neg    int
}{
	{"ABT", "web product", 3, 1028, 8547},
	{"WDC", "web product", 3, 2250, 7992},
	{"DBAC", "citation", 4, 2220, 10143},
	{"DBGO", "citation", 4, 5347, 23360},
	{"FOZA", "restaurant", 6, 110, 836},
	{"ZOYE", "restaurant", 7, 90, 354},
	{"AMGO", "software", 3, 1167, 10293},
	{"BEER", "drink", 4, 68, 382},
	{"ITAM", "music", 8, 132, 407},
	{"ROIM", "movie", 5, 190, 410},
	{"WAAM", "electronics", 5, 962, 9280},
}

func TestTable1MatchesPaper(t *testing.T) {
	got := Table1()
	if len(got) != len(publishedStats) {
		t.Fatalf("Table1 has %d rows, want %d", len(got), len(publishedStats))
	}
	for i, want := range publishedStats {
		g := got[i]
		if g.Name != want.name || g.Domain != want.domain ||
			g.Attrs != want.attrs || g.Pos != want.pos || g.Neg != want.neg {
			t.Errorf("row %d: got %+v, want %+v", i, g, want)
		}
	}
}

func TestGeneratedCountsMatchTable1(t *testing.T) {
	for _, want := range publishedStats {
		d := MustGenerate(want.name, 42)
		if d.Positives() != want.pos || d.Negatives() != want.neg {
			t.Errorf("%s: %d pos / %d neg, want %d / %d",
				want.name, d.Positives(), d.Negatives(), want.pos, want.neg)
		}
		if d.Schema.NumAttrs() != want.attrs {
			t.Errorf("%s: %d attrs, want %d", want.name, d.Schema.NumAttrs(), want.attrs)
		}
		for _, p := range d.Pairs {
			if len(p.Left.Values) != want.attrs || len(p.Right.Values) != want.attrs {
				t.Fatalf("%s: record arity mismatch", want.name)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate("BEER", 7)
	b := MustGenerate("BEER", 7)
	if len(a.Pairs) != len(b.Pairs) {
		t.Fatal("different sizes for same seed")
	}
	for i := range a.Pairs {
		if record.SerializeRecord(a.Pairs[i].Left, record.SerializeOptions{}) !=
			record.SerializeRecord(b.Pairs[i].Left, record.SerializeOptions{}) {
			t.Fatalf("pair %d differs between same-seed generations", i)
		}
	}
}

func TestGenerateSeedSensitive(t *testing.T) {
	a := MustGenerate("BEER", 7)
	b := MustGenerate("BEER", 8)
	same := 0
	for i := range a.Pairs {
		if record.SerializeRecord(a.Pairs[i].Left, record.SerializeOptions{}) ==
			record.SerializeRecord(b.Pairs[i].Left, record.SerializeOptions{}) {
			same++
		}
	}
	if same == len(a.Pairs) {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestGenerateUnknownName(t *testing.T) {
	if _, err := Generate("NOPE", 1); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestDatasetsDisjoint(t *testing.T) {
	ds := GenerateAll(42)
	if overlaps := VerifyDisjoint(ds); len(overlaps) > 0 {
		t.Fatalf("datasets share tuples: %v", overlaps[:min(3, len(overlaps))])
	}
}

func TestPrimaryAttributeNeverMissing(t *testing.T) {
	for _, d := range GenerateAll(42) {
		for i, p := range d.Pairs {
			if strings.TrimSpace(p.Left.Values[0]) == "" || strings.TrimSpace(p.Right.Values[0]) == "" {
				t.Fatalf("%s pair %d has an empty primary attribute", d.Name, i)
			}
		}
	}
}

func TestPositivesShareEntity(t *testing.T) {
	// Positives must be textually closer than random negatives on average:
	// a sanity check that view corruption has not destroyed entity identity.
	for _, name := range []string{"FOZA", "DBAC", "BEER"} {
		d := MustGenerate(name, 42)
		var posSim, negSim float64
		var nPos, nNeg int
		for _, p := range d.Pairs {
			l := record.SerializeRecord(p.Left, record.SerializeOptions{})
			r := record.SerializeRecord(p.Right, record.SerializeOptions{})
			s := tokenOverlapRatio(l, r)
			if p.Match {
				posSim += s
				nPos++
			} else {
				negSim += s
				nNeg++
			}
		}
		if posSim/float64(nPos) <= negSim/float64(nNeg) {
			t.Errorf("%s: positives not more similar than negatives on average", name)
		}
	}
}

func tokenOverlapRatio(a, b string) float64 {
	as := strings.Fields(strings.ToLower(a))
	bs := strings.Fields(strings.ToLower(b))
	set := make(map[string]bool)
	for _, t := range as {
		set[t] = true
	}
	shared := 0
	for _, t := range bs {
		if set[t] {
			shared++
		}
	}
	if len(as)+len(bs) == 0 {
		return 0
	}
	return 2 * float64(shared) / float64(len(as)+len(bs))
}

func TestSharedDomain(t *testing.T) {
	for _, name := range []string{"ABT", "WDC", "DBAC", "DBGO", "FOZA", "ZOYE"} {
		if !SharedDomain(name) {
			t.Errorf("%s should share its domain", name)
		}
	}
	for _, name := range []string{"AMGO", "BEER", "ITAM", "ROIM", "WAAM"} {
		if SharedDomain(name) {
			t.Errorf("%s should not share its domain", name)
		}
	}
	if SharedDomain("UNKNOWN") {
		t.Error("unknown dataset cannot share a domain")
	}
}

func TestNamesOrder(t *testing.T) {
	names := Names()
	want := []string{"ABT", "WDC", "DBAC", "DBGO", "FOZA", "ZOYE", "AMGO", "BEER", "ITAM", "ROIM", "WAAM"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v", names)
	}
	for i := range names {
		if names[i] != want[i] {
			t.Fatalf("Names() order = %v", names)
		}
	}
}

func TestCorruptValuePreservesNonEmpty(t *testing.T) {
	rng := stats.NewRNG(1)
	prof := CorruptionProfile{Abbreviate: 0.5, Typo: 0.3, DropToken: 0.3, CaseFlip: 0.2, Reorder: 0.3}
	for i := 0; i < 200; i++ {
		out := corruptValue("golden dragon palace restaurant", prof, rng.SplitN("c", i))
		if strings.TrimSpace(out) == "" {
			t.Fatal("corruption emptied a value without MissingValue set")
		}
	}
}

func TestCorruptValueMissing(t *testing.T) {
	rng := stats.NewRNG(2)
	prof := CorruptionProfile{MissingValue: 1}
	if corruptValue("anything", prof, rng) != "" {
		t.Fatal("MissingValue=1 should blank the value")
	}
}

func TestApplyTypoSkipsDigits(t *testing.T) {
	rng := stats.NewRNG(3)
	for i := 0; i < 50; i++ {
		if got := applyTypo("kx-12304", rng); got != "kx-12304" {
			t.Fatalf("typo altered identifier: %q", got)
		}
	}
}

func TestReformatNumberPreservesYears(t *testing.T) {
	rng := stats.NewRNG(4)
	for i := 0; i < 50; i++ {
		got := reformatNumber("1999", rng.SplitN("y", i))
		if got != "1999" {
			t.Fatalf("year reformatted to %q", got)
		}
	}
}

func TestInitialsStyle(t *testing.T) {
	got := initialsStyle("john smith and mei chen")
	if got != "j. smith, m. chen" {
		t.Fatalf("initialsStyle = %q", got)
	}
}

func TestRewritePhone(t *testing.T) {
	if got := rewritePhone("213-555-0123"); got != "(213) 555-0123" {
		t.Fatalf("rewritePhone = %q", got)
	}
	if got := rewritePhone("not-a-phone-number"); got != "not-a-phone-number" {
		t.Fatalf("malformed phone altered: %q", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestGenerateAllParallelMatchesSequential(t *testing.T) {
	seq := GenerateAll(7)
	par := GenerateAllParallel(7, 4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("parallel dataset generation differs from sequential")
	}
}
