package datasets

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// TestGeneratorInvariantsAcrossSeeds: any seed must produce the exact
// published counts, non-empty primary values, and well-formed arity.
func TestGeneratorInvariantsAcrossSeeds(t *testing.T) {
	if err := quick.Check(func(seed uint16) bool {
		d := MustGenerate("BEER", uint64(seed))
		if d.Positives() != 68 || d.Negatives() != 382 {
			return false
		}
		for _, p := range d.Pairs {
			if len(p.Left.Values) != 4 || len(p.Right.Values) != 4 {
				return false
			}
			if p.Left.Values[0] == "" || p.Right.Values[0] == "" {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptionNeverPanics: the corruption operators must handle
// arbitrary strings (unicode, punctuation, empty-ish) without panicking.
func TestCorruptionNeverPanics(t *testing.T) {
	rng := stats.NewRNG(1)
	prof := CorruptionProfile{
		Abbreviate: 0.5, Typo: 0.5, DropToken: 0.5, AddNoise: 0.5,
		NoiseTokens: 2, Reorder: 0.5, CaseFlip: 0.5, NumberFormat: 0.5,
		MissingValue: 0.1, Truncate: 0.5,
	}
	if err := quick.Check(func(s string) bool {
		if len(s) > 300 {
			s = s[:300]
		}
		_ = corruptValue(s, prof, rng)
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestHardNegativesDiffer: hard-negative construction must always produce
// an entity that differs from its source in at least one attribute —
// otherwise the generator would create mislabeled negatives. The raw
// mutators may rarely reproduce the source (small vocabularies); the
// mutateDistinct guard retries until they differ.
func TestHardNegativesDiffer(t *testing.T) {
	rng := stats.NewRNG(7)
	for _, s := range allSpecs() {
		for i := 0; i < 100; i++ {
			e := s.gen(rng.SplitN(s.name, i), i+1)
			m := mutateDistinct(s, clone(e), rng.SplitN(s.name+"-mut", i), i, i+1)
			if sameEntity(e, m) {
				t.Errorf("%s: mutation %d produced an identical entity %v", s.name, i, e)
				break
			}
		}
	}
}

// TestViewsPreserveArity: the corruption views keep the schema arity for
// every dataset and every pair.
func TestViewsPreserveArity(t *testing.T) {
	for _, d := range GenerateAll(99) {
		want := d.Schema.NumAttrs()
		for i, p := range d.Pairs {
			if len(p.Left.Values) != want || len(p.Right.Values) != want {
				t.Fatalf("%s pair %d: arity %d/%d, want %d",
					d.Name, i, len(p.Left.Values), len(p.Right.Values), want)
			}
		}
	}
}

// TestImbalanceMatchesTable1: the per-dataset imbalance rates drive the
// Finding-6 analysis; they must follow the published counts exactly.
func TestImbalanceMatchesTable1(t *testing.T) {
	for _, s := range Table1() {
		d := MustGenerate(s.Name, 42)
		want := float64(s.Neg) / float64(s.Pos+s.Neg)
		if got := d.ImbalanceRate(); got != want {
			t.Errorf("%s: imbalance %v, want %v", s.Name, got, want)
		}
	}
}
