package datasets

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/par"
	"repro/internal/record"
	"repro/internal/stats"
)

// DedupCorpus is a single-relation deduplication workload: a shuffled pile
// of records in which some entities appear more than once under different
// surface forms, plus the ground truth needed to score blocking recall and
// clustering quality. It is the raw-record starting point the pre-blocked
// benchmark datasets skip (§2.1): no pairs exist until a blocker makes
// them.
type DedupCorpus struct {
	// Records holds the corpus in a seeded shuffle order (duplicates are
	// not adjacent).
	Records []record.Record
	// Truth maps record ID to its entity key — the input shape
	// cluster.Evaluate expects.
	Truth map[string]string
	// Entities is the number of distinct entities behind the records.
	Entities int
	// Schema describes the generated attributes (title, brand, model,
	// price); matchers never see it.
	Schema record.Schema
}

// TruthPairs expands the entity assignment into the unordered duplicate
// pairs, keyed (lowerID, higherID) in corpus order — the map shape
// blocking.Recall consumes. Entity sizes are small, so the pair count is
// linear in the corpus size.
func (c *DedupCorpus) TruthPairs() map[[2]string]bool {
	members := make(map[string][]string)
	for _, r := range c.Records {
		e := c.Truth[r.ID]
		members[e] = append(members[e], r.ID)
	}
	pairs := make(map[[2]string]bool)
	for _, ids := range members {
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				pairs[[2]string{ids[i], ids[j]}] = true
			}
		}
	}
	return pairs
}

// dedupProfile is the corruption dial between two views of the same
// entity: aggressive enough that exact-key blocking would miss most
// duplicates, mild enough that duplicate views keep a token-set Jaccard
// similarity well above unrelated products'.
var dedupProfile = CorruptionProfile{
	Abbreviate:   0.20,
	Typo:         0.06,
	DropToken:    0.08,
	AddNoise:     0.06,
	NoiseTokens:  2,
	Reorder:      0.10,
	CaseFlip:     0.05,
	NumberFormat: 0.15,
	MissingValue: 0.04,
}

// dedupSizeWeights is the entity-size distribution: most entities occur
// once (pure noise for the dedup task), duplicated entities mostly twice,
// with a tail up to five occurrences.
var dedupSizeWeights = []float64{0.52, 0.28, 0.12, 0.05, 0.03}

// GenerateDedupCorpus builds a deterministic synthetic product corpus of
// exactly n records. Generation parallelises over entities with one
// seeded RNG stream each, so the corpus is identical at any worker count
// (workers ≤ 0 means one per CPU).
func GenerateDedupCorpus(n int, seed uint64, workers int) *DedupCorpus {
	rng := stats.NewRNG(seed).Split("dedup-corpus")

	// Draw entity sizes sequentially until they cover n records; the
	// last entity is trimmed to land exactly on n.
	sizes := make([]int, 0, n)
	total := 0
	for total < n {
		s := rng.Choice(dedupSizeWeights) + 1
		if total+s > n {
			s = n - total
		}
		sizes = append(sizes, s)
		total += s
	}
	offs := make([]int, len(sizes)+1)
	for i, s := range sizes {
		offs[i+1] = offs[i] + s
	}

	c := &DedupCorpus{
		Records:  make([]record.Record, n),
		Truth:    make(map[string]string, n),
		Entities: len(sizes),
		Schema: record.Schema{
			Names: []string{"title", "brand", "model", "price"},
			Types: []record.AttrType{record.AttrText, record.AttrShort, record.AttrShort, record.AttrNumeric},
		},
	}

	// One entity per job: generate the canonical values, then each
	// occurrence as an independently corrupted view.
	_ = par.Do(len(sizes), workers, func(e int) error {
		erng := rng.Split("entity:" + strconv.Itoa(e))
		vals := dedupEntity(erng, e)
		for v := 0; v < sizes[e]; v++ {
			vrng := erng.Split("view:" + strconv.Itoa(v))
			out := make([]string, len(vals))
			for a, val := range vals {
				p := dedupProfile
				if a == 0 {
					p.MissingValue = 0 // the title always identifies the entity
				}
				out[a] = corruptValue(val, p, vrng)
			}
			idx := offs[e] + v
			c.Records[idx] = record.Record{ID: fmt.Sprintf("d%d-%d", e, v), Values: out}
		}
		return nil
	})

	// Shuffle so duplicates are not adjacent; a blocker that exploited
	// generation order would be cheating.
	perm := rng.Split("shuffle").Perm(n)
	shuffled := make([]record.Record, n)
	for i, j := range perm {
		shuffled[i] = c.Records[j]
	}
	c.Records = shuffled
	for _, r := range c.Records {
		c.Truth[r.ID] = "e" + strings.SplitN(strings.TrimPrefix(r.ID, "d"), "-", 2)[0]
	}
	return c
}

// dedupEntity draws one canonical product. The serial is folded into the
// model code in full (no modulus), so entities are distinct across corpora
// of any size.
func dedupEntity(rng *stats.RNG, serial int) entity {
	brand := pick(rng, productBrands)
	kind := pick(rng, productTypes)
	model := dedupModelCode(rng, serial)
	adj := pick(rng, productAdjectives)
	title := fmt.Sprintf("%s %s %s %s", brand, adj, kind, model)
	price := fmt.Sprintf("$%d.%02d", 9+rng.Intn(990), rng.Intn(100))
	return entity{title, brand, model, price}
}

// dedupModelCode encodes the full entity serial in base-36 plus two random
// letters, guaranteeing uniqueness without a birthday bound.
func dedupModelCode(rng *stats.RNG, serial int) string {
	letters := "abcdefghjkmnpqrstuvwx"
	l1 := letters[rng.Intn(len(letters))]
	l2 := letters[rng.Intn(len(letters))]
	return fmt.Sprintf("%c%c-%s", l1, l2, strconv.FormatInt(int64(serial), 36))
}
