// Package datasets generates the 11 benchmark datasets of the study
// (Table 1) as seeded synthetic equivalents. The original Magellan/WDC
// data cannot be redistributed or fetched offline; each generator
// reproduces the published statistics exactly (#attributes, #positives,
// #negatives), the domain's textual character (citation venues, product
// model numbers, restaurant phone numbers, ...), and a per-dataset
// difficulty profile chosen so the relative hardness ordering reported in
// the paper holds (FOZA/ZOYE easy and well-structured, AMGO/WDC dominated
// by domain-specific product language, DBGO noisy-but-structured, ...).
//
// Entity universes are disjoint across datasets by construction (every
// generator draws from its own seeded stream and name space), which
// reproduces the paper's zero tuple-overlap validation (§5.1).
package datasets

// Vocabulary pools shared by the domain entity factories. The pools are
// intentionally larger than any single dataset's draw so that entities are
// (probabilistically) unique within and across datasets.

var firstNames = []string{
	"james", "mary", "robert", "patricia", "john", "jennifer", "michael",
	"linda", "david", "elizabeth", "william", "barbara", "richard", "susan",
	"joseph", "jessica", "thomas", "sarah", "charles", "karen", "wei",
	"ananya", "carlos", "yuki", "fatima", "lars", "ingrid", "pablo",
	"chen", "amara", "henrik", "sofia", "dmitri", "leila", "marco",
	"priya", "kwame", "astrid", "rafael", "mei",
}

var lastNames = []string{
	"smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
	"davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
	"wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
	"lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
	"ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
	"wright", "scott", "torres", "nguyen", "hill", "flores", "green",
	"adams", "nelson", "baker", "hall", "rivera", "campbell", "mitchell",
	"carter", "roberts", "kumar", "patel", "kim", "chen", "yamamoto",
	"schmidt", "mueller", "rossi", "silva", "kowalski",
}

// csTopics feeds citation titles.
var csTopics = []string{
	"query", "optimization", "distributed", "transaction", "processing",
	"relational", "database", "systems", "indexing", "concurrency",
	"control", "recovery", "parallel", "stream", "mining", "clustering",
	"classification", "learning", "semantic", "integration", "schema",
	"matching", "entity", "resolution", "deduplication", "warehousing",
	"olap", "aggregation", "sampling", "approximate", "answering",
	"spatial", "temporal", "graph", "network", "analysis", "storage",
	"memory", "cache", "performance", "benchmark", "evaluation",
	"scalable", "efficient", "adaptive", "incremental", "robust",
	"probabilistic", "uncertain", "privacy", "secure", "federated",
	"cloud", "elastic", "workload", "tuning", "selection", "estimation",
	"cardinality", "join", "algorithms", "structures", "compression",
	"partitioning", "replication", "consistency", "availability",
	"views", "materialized", "queries", "xml", "web", "data",
}

var venues = []string{
	"sigmod conference", "vldb", "icde", "acm transactions on database systems",
	"sigmod record", "vldb journal", "kdd", "icdt", "edbt", "cikm",
	"ieee transactions on knowledge and data engineering", "pods",
	"information systems", "data and knowledge engineering",
}

// Product vocabulary.
var productBrands = []string{
	"sony", "samsung", "panasonic", "canon", "nikon", "toshiba", "philips",
	"sharp", "jvc", "sanyo", "pioneer", "kenwood", "yamaha", "bose",
	"logitech", "belkin", "netgear", "linksys", "garmin", "olympus",
	"casio", "epson", "brother", "lexmark", "sandisk", "kingston",
	"tripplite", "startech", "plantronics", "jabra",
}

var productTypes = []string{
	"camera", "camcorder", "television", "monitor", "printer", "scanner",
	"keyboard", "mouse", "headphones", "speaker", "receiver", "turntable",
	"projector", "router", "switch", "adapter", "charger", "battery",
	"cable", "case", "tripod", "microphone", "webcam", "radio",
	"player", "recorder", "subwoofer", "soundbar", "dock", "hub",
	"drive", "enclosure", "mount", "stand", "remote", "lens",
	"flash", "filter", "bag", "sleeve",
}

var productAdjectives = []string{
	"digital", "wireless", "portable", "compact", "professional", "ultra",
	"premium", "slim", "rugged", "waterproof", "bluetooth", "optical",
	"stereo", "noise-canceling", "rechargeable", "high-speed", "dual",
	"universal", "ergonomic", "adjustable",
}

var productColors = []string{
	"black", "white", "silver", "gray", "blue", "red", "titanium",
}

var marketingFiller = []string{
	"best", "seller", "new", "improved", "value", "pack", "limited",
	"edition", "warranty", "included", "free", "shipping", "genuine",
	"original", "authentic", "top", "rated", "quality", "deal", "sale",
	"clearance", "exclusive", "bundle", "accessory", "kit", "easy",
	"setup", "plug", "play", "compatible", "replacement", "durable",
	"lightweight", "design", "style", "modern", "classic",
}

// Software vocabulary (AMGO).
var softwareVendors = []string{
	"microsoft", "adobe", "symantec", "intuit", "corel", "mcafee",
	"autodesk", "roxio", "nero", "kaspersky", "avast", "nuance",
	"pinnacle", "cyberlink", "broderbund", "encore", "individual",
	"topics", "nova", "vtech",
}

var softwareProducts = []string{
	"office", "photoshop", "antivirus", "quickbooks", "draw", "security",
	"autocad", "creator", "burning", "internet", "studio", "director",
	"suite", "premiere", "illustrator", "acrobat", "taxcut", "money",
	"publisher", "access", "project", "visio", "painter", "designer",
	"firewall", "utilities", "backup", "recovery", "cleaner", "tuneup",
}

var softwareEditions = []string{
	"standard", "professional", "deluxe", "premium", "home", "student",
	"enterprise", "ultimate", "basic", "plus",
}

// Restaurant vocabulary.
var restaurantNames1 = []string{
	"golden", "blue", "royal", "little", "grand", "old", "new", "happy",
	"lucky", "silver", "red", "green", "sunny", "corner", "garden",
	"ocean", "mountain", "river", "village", "uptown", "downtown",
	"original", "famous", "twin", "crystal",
}

var restaurantNames2 = []string{
	"dragon", "palace", "bistro", "grill", "kitchen", "cafe", "diner",
	"house", "table", "spoon", "fork", "plate", "oven", "terrace",
	"tavern", "cantina", "trattoria", "brasserie", "pavilion", "lounge",
	"garden", "room", "spot", "place", "corner",
}

var cuisines = []string{
	"american", "italian", "french", "chinese", "japanese", "mexican",
	"thai", "indian", "mediterranean", "greek", "spanish", "korean",
	"vietnamese", "seafood", "steakhouse", "barbecue", "vegetarian",
	"fusion", "continental", "cajun",
}

var streetNames = []string{
	"main", "oak", "maple", "cedar", "pine", "elm", "washington",
	"lincoln", "madison", "jefferson", "park", "lake", "hill", "river",
	"church", "market", "broad", "center", "union", "franklin",
	"highland", "sunset", "valley", "spring", "mill",
}

var streetKinds = []string{"street", "avenue", "boulevard", "road", "drive", "lane", "way", "place"}

var cities = []string{
	"new york", "los angeles", "chicago", "houston", "phoenix",
	"philadelphia", "san antonio", "san diego", "dallas", "san jose",
	"austin", "seattle", "denver", "boston", "portland", "atlanta",
	"miami", "oakland", "minneapolis", "tulsa",
}

// Beer vocabulary.
var beerAdjectives = []string{
	"hoppy", "amber", "golden", "dark", "wild", "old", "crooked",
	"raging", "lazy", "angry", "burning", "frozen", "midnight", "summer",
	"winter", "harvest", "smoked", "barrel-aged", "imperial", "rustic",
}

var beerNouns = []string{
	"trail", "river", "moon", "bear", "eagle", "wolf", "fox", "owl",
	"anchor", "hammer", "wagon", "barn", "creek", "ridge", "summit",
	"canyon", "prairie", "harbor", "lighthouse", "mill",
}

var beerStyles = []string{
	"india pale ale", "american pale ale", "stout", "porter", "lager",
	"pilsner", "wheat ale", "saison", "amber ale", "brown ale",
	"double india pale ale", "blonde ale", "kolsch", "hefeweizen",
	"barleywine", "sour ale",
}

var breweryNames = []string{
	"stone creek brewing", "iron horse brewery", "blue ridge brewing",
	"copper kettle brewing", "north fork brewery", "granite peak brewing",
	"silver birch brewing", "red barn brewery", "salt flat brewing",
	"timberline brewery", "crooked river brewing", "high desert brewery",
	"green valley brewing", "old mill brewery", "harbor light brewing",
	"twin pines brewing", "wild plains brewery", "falcon ridge brewing",
	"stormwatch brewing", "quarry stone brewery",
}

// Music vocabulary.
var musicAdjectives = []string{
	"broken", "endless", "silent", "electric", "golden", "midnight",
	"crimson", "velvet", "neon", "distant", "fading", "restless",
	"hollow", "shining", "wandering", "burning", "frozen", "savage",
	"gentle", "wicked",
}

var musicNouns = []string{
	"hearts", "dreams", "roads", "skies", "rivers", "shadows", "echoes",
	"fires", "storms", "lights", "wires", "stars", "waves", "stones",
	"bells", "mirrors", "horizons", "embers", "tides", "whispers",
}

var artistNames = []string{
	"the velvet sparrows", "midnight carousel", "iron lotus",
	"the paper kings", "neon delta", "silver fox union", "the wild hollows",
	"cobalt avenue", "the glass pilots", "ember and oak",
	"the northern lights", "scarlet harbor", "the brass foxes",
	"violet skyline", "the lost cartographers", "golden era revival",
	"the quiet rebellion", "stereo mirage", "the autumn wolves",
	"crystal canyon",
}

var musicGenres = []string{
	"rock", "pop", "country", "jazz", "blues", "electronic", "folk",
	"hip-hop", "r&b", "alternative", "indie", "metal", "classical",
	"reggae",
}

// Movie vocabulary.
var movieAdjectives = []string{
	"last", "dark", "hidden", "final", "lost", "secret", "broken",
	"silent", "eternal", "forgotten", "perfect", "deadly", "long",
	"strange", "wild",
}

var movieNouns = []string{
	"horizon", "empire", "garden", "promise", "journey", "letter",
	"winter", "summer", "stranger", "detective", "kingdom", "harvest",
	"crossing", "reckoning", "masquerade", "voyage", "inheritance",
	"conspiracy", "covenant", "frontier",
}

var movieGenresList = []string{
	"drama", "comedy", "thriller", "action", "romance", "horror",
	"mystery", "adventure", "science fiction", "documentary",
}

// webProductCategories feeds WDC/ABT category-ish description text.
var webProductCategories = []string{
	"home audio", "car electronics", "computer accessories",
	"office electronics", "photography", "portable audio",
	"home theater", "networking", "storage devices", "gps navigation",
	"wearable technology", "gaming accessories",
}
