package datasets

import (
	"strings"

	"repro/internal/stats"
)

// abbrevMap maps canonical words to the abbreviated surface forms that the
// noisier "view" of an entity may use. It is the inverse of the knowledge
// base the LM substrate normalises with, so semantic capability is what
// reverses these corruptions — the mechanism that separates the model
// tiers on abbreviation-heavy datasets.
var abbrevMap = map[string][]string{
	"street":         {"st", "st."},
	"avenue":         {"ave", "ave."},
	"boulevard":      {"blvd", "blvd."},
	"road":           {"rd", "rd."},
	"drive":          {"dr", "dr."},
	"suite":          {"ste"},
	"international":  {"intl", "intl."},
	"conference":     {"conf"},
	"proceedings":    {"proc", "proc."},
	"transactions":   {"trans", "trans."},
	"journal":        {"j.", "jour"},
	"symposium":      {"symp"},
	"management":     {"mgmt"},
	"systems":        {"sys"},
	"database":       {"db"},
	"databases":      {"dbs"},
	"engineering":    {"eng", "engr"},
	"television":     {"tv"},
	"camera":         {"cam"},
	"wireless":       {"wifi", "wi-fi"},
	"black":          {"blk"},
	"white":          {"wht"},
	"silver":         {"slv"},
	"with":           {"w/"},
	"pack":           {"pk"},
	"edition":        {"ed", "ed."},
	"volume":         {"vol", "vol."},
	"version":        {"v.", "ver"},
	"windows":        {"win"},
	"software":       {"sw"},
	"professional":   {"pro"},
	"featuring":      {"feat", "feat.", "ft."},
	"original":       {"orig"},
	"soundtrack":     {"ost", "sndtrk"},
	"deluxe":         {"dlx"},
	"remastered":     {"remaster", "rmstr"},
	"director":       {"dir", "dir."},
	"minutes":        {"min"},
	"india pale ale": {"ipa"},
	"company":        {"co", "co."},
	"brewery":        {"brwy"},
	"brewing":        {"brw"},
	"and":            {"&", "+"},
	"incorporated":   {"inc", "inc."},
	"limited":        {"ltd"},
	"corporation":    {"corp"},
}

// CorruptionProfile controls how aggressively a dataset's second "view" of
// an entity diverges from the first. Each rate is a per-opportunity
// probability; the profile is the dataset's difficulty dial.
type CorruptionProfile struct {
	// Abbreviate replaces canonical words with abbreviations.
	Abbreviate float64
	// Typo introduces a character-level edit into a token.
	Typo float64
	// DropToken removes a token.
	DropToken float64
	// AddNoise appends marketing filler tokens to a value.
	AddNoise float64
	// NoiseTokens is how many filler tokens an AddNoise event appends.
	NoiseTokens int
	// Reorder shuffles the token order of a value.
	Reorder float64
	// CaseFlip upper-cases a token (surface-form noise).
	CaseFlip float64
	// NumberFormat reformats numeric values ($12.99 → 12.99 USD, 1999 → 99).
	NumberFormat float64
	// MissingValue blanks an attribute entirely.
	MissingValue float64
	// Truncate keeps only a prefix of a long value.
	Truncate float64
}

// corruptValue applies the profile to one attribute value, using rng for
// all randomness. Numeric-looking values only receive number formatting
// and missingness; text values receive the full operator set.
func corruptValue(v string, prof CorruptionProfile, rng *stats.RNG) string {
	if v == "" {
		return v
	}
	if rng.Bool(prof.MissingValue) {
		return ""
	}
	if isNumericValue(v) {
		if rng.Bool(prof.NumberFormat) {
			return reformatNumber(v, rng)
		}
		return v
	}

	toks := strings.Fields(v)

	// Abbreviation pass operates on multi-word phrases first, then tokens.
	joined := strings.Join(toks, " ")
	for canon, abbrs := range abbrevMap {
		if strings.Contains(canon, " ") && strings.Contains(joined, canon) && rng.Bool(prof.Abbreviate) {
			joined = strings.Replace(joined, canon, abbrs[rng.Intn(len(abbrs))], 1)
		}
	}
	toks = strings.Fields(joined)
	for i, t := range toks {
		if abbrs, ok := abbrevMap[t]; ok && rng.Bool(prof.Abbreviate) {
			toks[i] = abbrs[rng.Intn(len(abbrs))]
		}
	}

	// Token drops (never drop below one token).
	if len(toks) > 1 && rng.Bool(prof.DropToken) {
		i := rng.Intn(len(toks))
		toks = append(toks[:i], toks[i+1:]...)
	}

	// Typos.
	for i := range toks {
		if rng.Bool(prof.Typo) {
			toks[i] = applyTypo(toks[i], rng)
		}
	}

	// Case flips.
	for i := range toks {
		if rng.Bool(prof.CaseFlip) {
			toks[i] = strings.ToUpper(toks[i])
		}
	}

	// Reorder.
	if len(toks) > 2 && rng.Bool(prof.Reorder) {
		rng.Shuffle(len(toks), func(a, b int) { toks[a], toks[b] = toks[b], toks[a] })
	}

	// Marketing noise.
	if rng.Bool(prof.AddNoise) {
		n := prof.NoiseTokens
		if n <= 0 {
			n = 3
		}
		for k := 0; k < n; k++ {
			toks = append(toks, marketingFiller[rng.Intn(len(marketingFiller))])
		}
	}

	// Truncation of long values.
	if len(toks) > 6 && rng.Bool(prof.Truncate) {
		toks = toks[:4+rng.Intn(3)]
	}

	return strings.Join(toks, " ")
}

// applyTypo performs one random character edit (swap, delete or duplicate).
// Digit-bearing tokens (model numbers, prices, phone digits) are left
// alone: sellers copy identifiers from spec sheets, so typos concentrate
// in prose.
func applyTypo(tok string, rng *stats.RNG) string {
	for _, r := range tok {
		if r >= '0' && r <= '9' {
			return tok
		}
	}
	rs := []rune(tok)
	if len(rs) < 3 {
		return tok
	}
	i := 1 + rng.Intn(len(rs)-2)
	switch rng.Intn(3) {
	case 0: // swap adjacent
		rs[i], rs[i+1] = rs[i+1], rs[i]
	case 1: // delete
		rs = append(rs[:i], rs[i+1:]...)
	default: // duplicate
		rs = append(rs[:i+1], rs[i:]...)
	}
	return string(rs)
}

// isNumericValue reports whether a value is predominantly numeric (price,
// year, phone, rating).
func isNumericValue(v string) bool {
	digits, others := 0, 0
	for _, r := range v {
		switch {
		case r >= '0' && r <= '9':
			digits++
		case r == '.' || r == '$' || r == '-' || r == ' ' || r == '(' || r == ')' || r == '%' || r == ',':
			// separators common in numeric fields
		default:
			others++
		}
	}
	return digits > 0 && digits >= others
}

// reformatNumber rewrites a numeric surface form without changing the
// quantity. Currency restyling only applies to values that already look
// like prices (a currency symbol or a decimal point); plain integers such
// as years keep their shape.
func reformatNumber(v string, rng *stats.RNG) string {
	clean := strings.TrimSpace(v)
	priceLike := strings.HasPrefix(clean, "$") || strings.Contains(clean, ".")
	switch rng.Intn(3) {
	case 0:
		if !priceLike {
			return clean
		}
		if strings.HasPrefix(clean, "$") {
			return strings.TrimPrefix(clean, "$") + " USD"
		}
		return "$" + clean
	case 1:
		return strings.ReplaceAll(clean, " ", "")
	default:
		if strings.HasPrefix(clean, "$") {
			return strings.TrimPrefix(clean, "$")
		}
		return clean
	}
}
