package datasets

import (
	"fmt"
	"sort"

	"repro/internal/par"
	"repro/internal/record"
	"repro/internal/stats"
)

// Names returns the dataset codes in the paper's Table 1 order.
func Names() []string {
	specs := allSpecs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.name
	}
	return names
}

// Domains maps dataset code to the paper's domain label.
func Domains() map[string]string {
	out := make(map[string]string)
	for _, s := range allSpecs() {
		out[s.name] = s.domain
	}
	return out
}

// SharedDomain reports whether a dataset shares its domain with at least
// one other dataset (the Finding-5 grouping: ABT/WDC share "web product",
// DBAC/DBGO share "citation", FOZA/ZOYE share "restaurant").
func SharedDomain(name string) bool {
	domains := Domains()
	d, ok := domains[name]
	if !ok {
		return false
	}
	for other, od := range domains {
		if other != name && od == d {
			return true
		}
	}
	return false
}

// Generate builds the named dataset deterministically from the seed. The
// same (name, seed) always yields the identical dataset; different names
// yield disjoint entity universes.
func Generate(name string, seed uint64) (*record.Dataset, error) {
	for _, s := range allSpecs() {
		if s.name == name {
			return generate(s, seed), nil
		}
	}
	return nil, fmt.Errorf("datasets: unknown dataset %q", name)
}

// MustGenerate is Generate for known-good names; it panics on error.
func MustGenerate(name string, seed uint64) *record.Dataset {
	d, err := Generate(name, seed)
	if err != nil {
		panic(err)
	}
	return d
}

// GenerateAll builds all 11 benchmark datasets with the given seed, in
// Table 1 order.
func GenerateAll(seed uint64) []*record.Dataset {
	return GenerateAllParallel(seed, 1)
}

// GenerateAllParallel builds all benchmark datasets across the given
// number of workers. Every dataset derives from its own seeded RNG stream
// ("dataset:"+name), so the output is identical at any worker count; the
// slice still comes back in Table 1 order.
func GenerateAllParallel(seed uint64, workers int) []*record.Dataset {
	specs := allSpecs()
	out := make([]*record.Dataset, len(specs))
	_ = par.Do(len(specs), workers, func(i int) error {
		out[i] = generate(specs[i], seed)
		return nil
	})
	return out
}

// generate assembles the labeled pair set for one spec.
func generate(s *spec, seed uint64) *record.Dataset {
	// The dataset name is folded into the RNG stream so that entity
	// universes never collide across datasets.
	rng := stats.NewRNG(seed).Split("dataset:" + s.name)

	d := &record.Dataset{
		Name:     s.name,
		FullName: s.fullName,
		Domain:   s.domain,
		Schema:   s.schema,
	}
	d.Pairs = make([]record.LabeledPair, 0, s.pos+s.neg)

	serial := 0
	nextEntity := func() entity {
		serial++
		return s.gen(rng.Split(fmt.Sprintf("e%d", serial)), serial)
	}

	view := func(e entity, side string, prof CorruptionProfile, idx int) record.Record {
		vrng := rng.Split(fmt.Sprintf("view:%s:%d", side, idx))
		vals := clone(e)
		if side == "r" && s.rightStyle != nil {
			vals = s.rightStyle(vals, vrng)
		}
		out := make([]string, len(vals))
		for i, v := range vals {
			p := prof
			if i == 0 {
				// The primary attribute (name/title) is never missing in
				// the benchmarks: a record always identifies its entity.
				p.MissingValue = 0
			}
			out[i] = corruptValue(v, p, vrng)
		}
		return record.Record{ID: fmt.Sprintf("%s-%s%d", s.name, side, idx), Values: out}
	}

	// Positives: two views of the same entity.
	for i := 0; i < s.pos; i++ {
		e := nextEntity()
		d.Pairs = append(d.Pairs, record.LabeledPair{
			Pair: record.Pair{
				Left:  view(e, "l", s.cleanProfile, i),
				Right: view(e, "r", s.dirtyProfile, i),
			},
			Match: true,
		})
	}

	// Negatives come in three kinds, mirroring what blocking leaves in a
	// real candidate set: hard negatives (confusable siblings built by the
	// spec's mutator), related negatives (independent entities sharing
	// categorical context), and residual near-random pairs.
	nHard := int(float64(s.neg) * s.hardNegRatio)
	nRelated := int(float64(s.neg) * s.relatedNegRatio)
	for i := 0; i < s.neg; i++ {
		var left, right entity
		serialBase := serial
		switch {
		case i < nHard:
			left = nextEntity()
			right = mutateDistinct(s, left, rng, i, serialBase)
		case i < nHard+nRelated:
			left = nextEntity()
			right = nextEntity()
			for _, a := range s.sharedOnRelated {
				if a < len(left) && a < len(right) {
					right[a] = left[a]
				}
			}
		default:
			left = nextEntity()
			right = nextEntity()
		}
		idx := s.pos + i
		d.Pairs = append(d.Pairs, record.LabeledPair{
			Pair: record.Pair{
				Left:  view(left, "l", s.cleanProfile, idx),
				Right: view(right, "r", s.dirtyProfile, idx),
			},
			Match: false,
		})
	}
	return d
}

// mutateDistinct applies the spec's hard-negative mutator, retrying with
// fresh randomness in the (rare) event the mutation reproduces the source
// entity verbatim — which would silently create a mislabeled negative.
func mutateDistinct(s *spec, left entity, rng *stats.RNG, i, serial int) entity {
	for attempt := 0; ; attempt++ {
		right := s.mutate(left, rng.Split(fmt.Sprintf("mut%d.%d", i, attempt)), serial+attempt)
		if !sameEntity(left, right) || attempt >= 8 {
			return right
		}
	}
}

func sameEntity(a, b entity) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Stat is one row of Table 1.
type Stat struct {
	Name     string
	FullName string
	Domain   string
	Attrs    int
	Pos      int
	Neg      int
}

// Table1 returns the published dataset statistics (which the generators
// reproduce exactly), in table order.
func Table1() []Stat {
	specs := allSpecs()
	out := make([]Stat, len(specs))
	for i, s := range specs {
		out[i] = Stat{
			Name: s.name, FullName: s.fullName, Domain: s.domain,
			Attrs: s.schema.NumAttrs(), Pos: s.pos, Neg: s.neg,
		}
	}
	return out
}

// VerifyDisjoint checks that no serialized tuple appears in more than one
// of the given datasets, reproducing the paper's data-leakage validation
// (§5.1: "zero tuple overlap between every pair of datasets"). It returns
// the offending tuples, empty when disjoint.
func VerifyDisjoint(ds []*record.Dataset) []string {
	seen := make(map[string]string) // serialized tuple -> dataset name
	var overlaps []string
	for _, d := range ds {
		for _, p := range d.Pairs {
			for _, r := range []record.Record{p.Left, p.Right} {
				key := record.SerializeRecord(r, record.SerializeOptions{})
				if prev, ok := seen[key]; ok && prev != d.Name {
					overlaps = append(overlaps, fmt.Sprintf("%s ∩ %s: %q", prev, d.Name, key))
				} else {
					seen[key] = d.Name
				}
			}
		}
	}
	sort.Strings(overlaps)
	return overlaps
}
