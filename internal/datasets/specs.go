package datasets

import (
	"fmt"
	"strings"

	"repro/internal/record"
	"repro/internal/stats"
)

// Table 1 of the paper, encoded as generator specs. Corruption profiles,
// hard-negative ratios and related-negative sharing implement each
// dataset's difficulty character; see the package comment and DESIGN.md
// for the calibration rationale.

func specABT() *spec {
	return &spec{
		name: "ABT", fullName: "Abt-Buy", domain: "web product",
		schema: record.Schema{
			Names: []string{"name", "description", "price"},
			Types: []record.AttrType{record.AttrText, record.AttrText, record.AttrNumeric},
		},
		pos: 1028, neg: 8547,
		cleanProfile: CorruptionProfile{Abbreviate: 0.15, Typo: 0.02, DropToken: 0.05, AddNoise: 0.30, NoiseTokens: 4, CaseFlip: 0.06, NumberFormat: 0.3, MissingValue: 0.03},
		dirtyProfile: CorruptionProfile{Abbreviate: 0.55, Typo: 0.04, DropToken: 0.16, AddNoise: 0.70, NoiseTokens: 7, Reorder: 0.15, CaseFlip: 0.14, NumberFormat: 0.6, MissingValue: 0.25, Truncate: 0.14},
		hardNegRatio: 0.50,
		gen: func(rng *stats.RNG, serial int) entity {
			brand := pick(rng, productBrands)
			title := strings.Join([]string{brand, pick(rng, productAdjectives), pick(rng, productTypes), modelNumber(rng, serial)}, " ")
			return entity{title, descriptionFor(title, rng, 9), price(rng, 15, 900)}
		},
		mutate: func(e entity, rng *stats.RNG, serial int) entity {
			m := clone(e)
			// Same brand and type, different model: swap the identifier.
			toks := strings.Fields(m[0])
			toks[len(toks)-1] = modelNumber(rng, serial+499)
			m[0] = strings.Join(toks, " ")
			m[1] = descriptionFor(m[0], rng, 9)
			m[2] = price(rng, 15, 900)
			return m
		},
		// The two shops write independent marketing copy about the same
		// product: the right view regenerates the description from the
		// title. This is what defeats whole-record similarity on Abt-Buy.
		rightStyle: func(vals entity, rng *stats.RNG) entity {
			out := clone(vals)
			out[1] = descriptionFor(out[0], rng, 9)
			return out
		},
	}
}

func specWDC() *spec {
	return &spec{
		name: "WDC", fullName: "Web Data Commons", domain: "web product",
		schema: record.Schema{
			Names: []string{"title", "description", "price"},
			Types: []record.AttrType{record.AttrText, record.AttrText, record.AttrNumeric},
		},
		pos: 2250, neg: 7992,
		// WDC is scraped from thousands of webshops: very noisy on both
		// sides, heavy marketing filler and truncation.
		cleanProfile: CorruptionProfile{Abbreviate: 0.35, Typo: 0.04, DropToken: 0.10, AddNoise: 0.45, NoiseTokens: 5, Reorder: 0.16, CaseFlip: 0.14, NumberFormat: 0.4, MissingValue: 0.08},
		dirtyProfile: CorruptionProfile{Abbreviate: 0.60, Typo: 0.06, DropToken: 0.16, AddNoise: 0.70, NoiseTokens: 7, Reorder: 0.22, CaseFlip: 0.18, NumberFormat: 0.5, MissingValue: 0.20, Truncate: 0.14},
		hardNegRatio: 0.55,
		gen: func(rng *stats.RNG, serial int) entity {
			brand := pick(rng, productBrands)
			title := strings.Join([]string{brand, pick(rng, productTypes), pick(rng, productAdjectives), modelNumber(rng, serial), pick(rng, productColors)}, " ")
			return entity{title, descriptionFor(title, rng, 11), price(rng, 5, 600)}
		},
		mutate: func(e entity, rng *stats.RNG, serial int) entity {
			m := clone(e)
			toks := strings.Fields(m[0])
			toks[3] = modelNumber(rng, serial+811) // different model
			if rng.Bool(0.5) {
				toks[4] = pick(rng, productColors) // different variant colour
			}
			m[0] = strings.Join(toks, " ")
			m[1] = descriptionFor(m[0], rng, 11)
			return m
		},
		rightStyle: func(vals entity, rng *stats.RNG) entity {
			out := clone(vals)
			out[1] = descriptionFor(out[0], rng, 11)
			return out
		},
	}
}

func specDBAC() *spec {
	return &spec{
		name: "DBAC", fullName: "DBLP-ACM", domain: "citation",
		schema: record.Schema{
			Names: []string{"title", "authors", "venue", "year"},
			Types: []record.AttrType{record.AttrText, record.AttrText, record.AttrShort, record.AttrNumeric},
		},
		pos: 2220, neg: 10143,
		// Both DBLP and ACM are curated: clean structured data, author
		// formatting is the main divergence.
		cleanProfile:    CorruptionProfile{Abbreviate: 0.05, Typo: 0.01, DropToken: 0.02},
		dirtyProfile:    CorruptionProfile{Abbreviate: 0.30, Typo: 0.03, DropToken: 0.08, CaseFlip: 0.05, MissingValue: 0.05},
		hardNegRatio:    0.20,
		relatedNegRatio: 0.60,
		sharedOnRelated: []int{2, 3}, // venue, year
		gen: func(rng *stats.RNG, serial int) entity {
			title := titleWords(rng, 5+rng.Intn(4)) + " " + fmt.Sprintf("p%d", serial)
			return entity{title, authorList(rng, 2+rng.Intn(3)), pick(rng, venues), year(rng, 1995, 2005)}
		},
		mutate: func(e entity, rng *stats.RNG, serial int) entity {
			m := clone(e)
			// Same venue and overlapping topic words, different paper.
			m[0] = titleWords(rng, 5+rng.Intn(4)) + " " + fmt.Sprintf("p%dx", serial)
			m[1] = authorList(rng, 2+rng.Intn(3))
			return m
		},
		rightStyle: func(vals entity, rng *stats.RNG) entity {
			out := clone(vals)
			out[1] = initialsStyle(out[1])
			return out
		},
	}
}

func specDBGO() *spec {
	return &spec{
		name: "DBGO", fullName: "DBLP-Google", domain: "citation",
		schema: record.Schema{
			Names: []string{"title", "authors", "venue", "year"},
			Types: []record.AttrType{record.AttrText, record.AttrText, record.AttrShort, record.AttrNumeric},
		},
		pos: 5347, neg: 23360,
		// Google Scholar records are scraped: truncated author lists,
		// missing venues and years, abbreviation soup.
		cleanProfile:    CorruptionProfile{Abbreviate: 0.08, Typo: 0.02, DropToken: 0.04},
		dirtyProfile:    CorruptionProfile{Abbreviate: 0.55, Typo: 0.12, DropToken: 0.32, CaseFlip: 0.12, MissingValue: 0.32, Truncate: 0.22},
		hardNegRatio:    0.35,
		relatedNegRatio: 0.55,
		sharedOnRelated: []int{1, 2, 3}, // authors, venue, year — same research group
		gen: func(rng *stats.RNG, serial int) entity {
			title := titleWords(rng, 5+rng.Intn(5)) + " " + fmt.Sprintf("p%d", serial)
			return entity{title, authorList(rng, 1+rng.Intn(4)), pick(rng, venues), year(rng, 1992, 2008)}
		},
		mutate: func(e entity, rng *stats.RNG, serial int) entity {
			m := clone(e)
			switch rng.Intn(3) {
			case 0:
				// Follow-up paper by the same authors: overlapping topic
				// words, different paper, different venue and year.
				m[0] = titleWords(rng, 5+rng.Intn(5)) + " extended " + fmt.Sprintf("p%dx", serial)
				m[2] = pick(rng, venues)
				m[3] = year(rng, 1992, 2008)
			case 1:
				m[0] = titleWords(rng, 5+rng.Intn(5)) + " " + fmt.Sprintf("p%dx", serial)
			default:
				m[1] = authorList(rng, 1+rng.Intn(4))
				m[0] = titleWords(rng, 5+rng.Intn(5)) + " " + fmt.Sprintf("p%dx", serial)
			}
			return m
		},
		rightStyle: func(vals entity, rng *stats.RNG) entity {
			out := clone(vals)
			if rng.Bool(0.6) {
				out[1] = initialsStyle(out[1])
			}
			return out
		},
	}
}

func specFOZA() *spec {
	return &spec{
		name: "FOZA", fullName: "Fodors-Zagats", domain: "restaurant",
		schema: record.Schema{
			Names: []string{"name", "addr", "city", "phone", "type", "class"},
			Types: []record.AttrType{record.AttrText, record.AttrText, record.AttrShort, record.AttrShort, record.AttrShort, record.AttrShort},
		},
		pos: 110, neg: 836,
		// The classic benchmark: well-structured listings whose surface
		// diverges heavily (abbreviations, phone punctuation) while the
		// underlying structure stays clean — easy for structured matchers,
		// hostile to naive string similarity.
		cleanProfile:    CorruptionProfile{Abbreviate: 0.15, CaseFlip: 0.03},
		dirtyProfile:    CorruptionProfile{Abbreviate: 0.60, Typo: 0.05, DropToken: 0.10, CaseFlip: 0.07, MissingValue: 0.04},
		hardNegRatio:    0.18,
		relatedNegRatio: 0.70,
		sharedOnRelated: []int{2, 4, 5}, // city, type, class
		gen: func(rng *stats.RNG, serial int) entity {
			name := pick(rng, restaurantNames1) + " " + pick(rng, restaurantNames2)
			addr := fmt.Sprintf("%d %s %s", 100+rng.Intn(9900), pick(rng, streetNames), pick(rng, streetKinds))
			return entity{name, addr, pick(rng, cities), phoneNumber(rng, serial), pick(rng, cuisines), "$" + strings.Repeat("$", rng.Intn(3))}
		},
		mutate: func(e entity, rng *stats.RNG, serial int) entity {
			m := clone(e)
			// A different branch: same name, different address and phone.
			m[1] = fmt.Sprintf("%d %s %s", 100+rng.Intn(9900), pick(rng, streetNames), pick(rng, streetKinds))
			m[3] = phoneNumber(rng, serial+613)
			if rng.Bool(0.5) {
				m[2] = pick(rng, cities)
			}
			return m
		},
		rightStyle: func(vals entity, rng *stats.RNG) entity {
			out := clone(vals)
			out[3] = rewritePhone(out[3])
			return out
		},
	}
}

func specZOYE() *spec {
	return &spec{
		name: "ZOYE", fullName: "Zomato-Yelp", domain: "restaurant",
		schema: record.Schema{
			Names: []string{"name", "addr", "city", "phone", "type", "rating", "zip"},
			Types: []record.AttrType{record.AttrText, record.AttrText, record.AttrShort, record.AttrShort, record.AttrShort, record.AttrNumeric, record.AttrNumeric},
		},
		pos: 90, neg: 354,
		cleanProfile:    CorruptionProfile{Abbreviate: 0.10, CaseFlip: 0.02},
		dirtyProfile:    CorruptionProfile{Abbreviate: 0.50, Typo: 0.05, DropToken: 0.09, CaseFlip: 0.06, NumberFormat: 0.3, MissingValue: 0.05},
		hardNegRatio:    0.22,
		relatedNegRatio: 0.65,
		sharedOnRelated: []int{2, 4}, // city, type
		gen: func(rng *stats.RNG, serial int) entity {
			name := pick(rng, restaurantNames1) + " " + pick(rng, restaurantNames2)
			addr := fmt.Sprintf("%d %s %s", 100+rng.Intn(9900), pick(rng, streetNames), pick(rng, streetKinds))
			rating := fmt.Sprintf("%.1f", 2.5+rng.Float64()*2.5)
			zip := fmt.Sprintf("%05d", 10000+rng.Intn(89999))
			return entity{name, addr, pick(rng, cities), phoneNumber(rng, serial), pick(rng, cuisines), rating, zip}
		},
		mutate: func(e entity, rng *stats.RNG, serial int) entity {
			m := clone(e)
			m[1] = fmt.Sprintf("%d %s %s", 100+rng.Intn(9900), pick(rng, streetNames), pick(rng, streetKinds))
			m[3] = phoneNumber(rng, serial+409)
			m[6] = fmt.Sprintf("%05d", 10000+rng.Intn(89999))
			return m
		},
		rightStyle: func(vals entity, rng *stats.RNG) entity {
			out := clone(vals)
			out[3] = rewritePhone(out[3])
			return out
		},
	}
}

func specAMGO() *spec {
	return &spec{
		name: "AMGO", fullName: "Amazon-Google", domain: "software",
		schema: record.Schema{
			Names: []string{"title", "manufacturer", "price"},
			Types: []record.AttrType{record.AttrText, record.AttrShort, record.AttrNumeric},
		},
		pos: 1167, neg: 10293,
		// The hardest benchmark: software titles where version and edition
		// are the only discriminators, manufacturer frequently missing on
		// the Google side, prices diverge.
		cleanProfile:    CorruptionProfile{Abbreviate: 0.18, Typo: 0.02, DropToken: 0.08, NumberFormat: 0.3},
		dirtyProfile:    CorruptionProfile{Abbreviate: 0.55, Typo: 0.05, DropToken: 0.20, AddNoise: 0.40, NoiseTokens: 3, Reorder: 0.15, CaseFlip: 0.10, NumberFormat: 0.6, MissingValue: 0.30, Truncate: 0.12},
		hardNegRatio:    0.55,
		relatedNegRatio: 0.30,
		sharedOnRelated: []int{1}, // manufacturer
		gen: func(rng *stats.RNG, serial int) entity {
			vendor := pick(rng, softwareVendors)
			title := fmt.Sprintf("%s %s %s %d.%d %s", vendor, pick(rng, softwareProducts),
				pick(rng, softwareEditions), 1+serial%9, rng.Intn(10), pick(rng, []string{"win", "mac", "windows", ""}))
			return entity{strings.TrimSpace(title), vendor, price(rng, 20, 700)}
		},
		mutate: func(e entity, rng *stats.RNG, serial int) entity {
			m := clone(e)
			toks := strings.Fields(m[0])
			// Same vendor, different product in the lineup: bump the
			// version, swap the edition, or switch the product word —
			// the mix of hard negatives real software catalogues produce.
			roll := rng.Float64()
			for i, t := range toks {
				if strings.Contains(t, ".") && isNumericValue(t) {
					toks[i] = fmt.Sprintf("%d.%d", 1+(serial+3)%9, rng.Intn(10))
					break
				}
			}
			if roll < 0.35 {
				for i, t := range toks {
					if contains(softwareProducts, t) {
						toks[i] = pick(rng, softwareProducts)
						break
					}
				}
			} else if roll < 0.65 {
				for i, t := range toks {
					if contains(softwareEditions, t) {
						toks[i] = pick(rng, softwareEditions)
						break
					}
				}
			}
			m[0] = strings.Join(toks, " ")
			m[2] = price(rng, 20, 700)
			return m
		},
	}
}

func specBEER() *spec {
	return &spec{
		name: "BEER", fullName: "Beer", domain: "drink",
		schema: record.Schema{
			Names: []string{"name", "factory", "style", "abv"},
			Types: []record.AttrType{record.AttrText, record.AttrText, record.AttrShort, record.AttrNumeric},
		},
		pos: 68, neg: 382,
		cleanProfile:    CorruptionProfile{Abbreviate: 0.15, Typo: 0.03},
		dirtyProfile:    CorruptionProfile{Abbreviate: 0.50, Typo: 0.08, DropToken: 0.18, CaseFlip: 0.07, MissingValue: 0.15, NumberFormat: 0.4},
		hardNegRatio:    0.45,
		relatedNegRatio: 0.40,
		sharedOnRelated: []int{1, 2}, // brewery, style
		gen: func(rng *stats.RNG, serial int) entity {
			name := fmt.Sprintf("%s %s %s", pick(rng, beerAdjectives), pick(rng, beerNouns), pick(rng, beerStyles))
			abv := fmt.Sprintf("%.1f%%", 4+rng.Float64()*8)
			return entity{name, pick(rng, breweryNames), pick(rng, beerStyles), abv}
		},
		mutate: func(e entity, rng *stats.RNG, serial int) entity {
			m := clone(e)
			// Same brewery, adjacent beer in the lineup: lineups reuse
			// naming themes, so the sibling usually shares a name word.
			words := strings.Fields(m[0])
			if len(words) >= 2 && rng.Bool(0.45) {
				words[1] = pick(rng, beerNouns)
				if rng.Bool(0.5) {
					words[0] = pick(rng, beerAdjectives)
				}
				m[0] = strings.Join(words, " ")
			} else {
				m[0] = fmt.Sprintf("%s %s %s", pick(rng, beerAdjectives), pick(rng, beerNouns), pick(rng, beerStyles))
				m[2] = pick(rng, beerStyles)
			}
			m[3] = fmt.Sprintf("%.1f%%", 4+rng.Float64()*8)
			return m
		},
	}
}

func specITAM() *spec {
	return &spec{
		name: "ITAM", fullName: "iTunes-Amazon", domain: "music",
		schema: record.Schema{
			Names: []string{"song", "artist", "album", "genre", "price", "copyright", "time", "released"},
			Types: []record.AttrType{record.AttrText, record.AttrText, record.AttrText, record.AttrShort, record.AttrNumeric, record.AttrText, record.AttrNumeric, record.AttrNumeric},
		},
		pos: 132, neg: 407,
		// Eight attributes dilute the discriminative signal (song title)
		// for matchers that weight every field; hard negatives are other
		// tracks of the same album.
		cleanProfile:    CorruptionProfile{Abbreviate: 0.15, Typo: 0.04, NumberFormat: 0.3, MissingValue: 0.05},
		dirtyProfile:    CorruptionProfile{Abbreviate: 0.50, Typo: 0.08, DropToken: 0.15, AddNoise: 0.22, NoiseTokens: 3, CaseFlip: 0.08, NumberFormat: 0.6, MissingValue: 0.28},
		hardNegRatio:    0.62,
		relatedNegRatio: 0.30,
		sharedOnRelated: []int{1, 3}, // artist, genre
		gen: func(rng *stats.RNG, serial int) entity {
			song := fmt.Sprintf("%s %s", pick(rng, musicAdjectives), pick(rng, musicNouns))
			artist := pick(rng, artistNames)
			album := fmt.Sprintf("%s %s", pick(rng, musicAdjectives), pick(rng, musicNouns))
			dur := fmt.Sprintf("%d:%02d", 2+rng.Intn(4), rng.Intn(60))
			copyrightLine := fmt.Sprintf("%d %s records", 1990+rng.Intn(30), pick(rng, lastNames))
			return entity{song, artist, album, pick(rng, musicGenres), price(rng, 0.69, 1.29), copyrightLine, dur, year(rng, 1990, 2020)}
		},
		mutate: func(e entity, rng *stats.RNG, serial int) entity {
			m := clone(e)
			// Another track on the same album: the song title changes but —
			// album tracks being thematically named — usually shares a word
			// with the original, which is what makes iTunes-Amazon hard
			// negatives nearly indistinguishable for whole-record
			// similarity.
			words := strings.Fields(m[0])
			if rng.Bool(0.5) && len(words) == 2 {
				m[0] = words[0] + " " + pick(rng, musicNouns)
			} else if len(words) == 2 {
				m[0] = pick(rng, musicAdjectives) + " " + words[1]
			} else {
				m[0] = fmt.Sprintf("%s %s", pick(rng, musicAdjectives), pick(rng, musicNouns))
			}
			m[6] = fmt.Sprintf("%d:%02d", 2+rng.Intn(4), rng.Intn(60))
			return m
		},
		// iTunes lists durations as m:ss, Amazon as total seconds; iTunes
		// also decorates song and album titles with release-variant
		// suffixes the Amazon listing omits, which drags matching pairs'
		// similarity down into the hard-negative range — the effect behind
		// ZeroER's published collapse on this dataset.
		rightStyle: func(vals entity, rng *stats.RNG) entity {
			out := clone(vals)
			var mins, secs int
			if _, err := fmt.Sscanf(out[6], "%d:%d", &mins, &secs); err == nil {
				out[6] = fmt.Sprintf("%d", mins*60+secs)
			}
			suffixes := []string{"(album version)", "(remastered)", "(deluxe version)", "(explicit)", "(single edit)"}
			if rng.Bool(0.35) {
				out[0] = out[0] + " " + pick(rng, suffixes)
			}
			if rng.Bool(0.4) {
				out[2] = out[2] + " (deluxe edition)"
			}
			return out
		},
	}
}

func specROIM() *spec {
	return &spec{
		name: "ROIM", fullName: "RottenTomato-IMDB", domain: "movie",
		schema: record.Schema{
			Names: []string{"title", "director", "year", "genre", "duration"},
			Types: []record.AttrType{record.AttrText, record.AttrText, record.AttrNumeric, record.AttrShort, record.AttrNumeric},
		},
		pos: 190, neg: 410,
		cleanProfile:    CorruptionProfile{Abbreviate: 0.06, Typo: 0.02},
		dirtyProfile:    CorruptionProfile{Abbreviate: 0.32, Typo: 0.05, DropToken: 0.10, CaseFlip: 0.05, NumberFormat: 0.3, MissingValue: 0.12},
		hardNegRatio:    0.25,
		relatedNegRatio: 0.50,
		sharedOnRelated: []int{3}, // genre
		gen: func(rng *stats.RNG, serial int) entity {
			title := fmt.Sprintf("the %s %s", pick(rng, movieAdjectives), pick(rng, movieNouns))
			dur := fmt.Sprintf("%d min", 80+rng.Intn(80))
			return entity{title, personName(rng), year(rng, 1970, 2020), pick(rng, movieGenresList), dur}
		},
		mutate: func(e entity, rng *stats.RNG, serial int) entity {
			m := clone(e)
			if rng.Bool(0.4) {
				// Remake: same title, different director and year.
				m[1] = personName(rng)
				m[2] = year(rng, 1970, 2020)
			} else {
				m[0] = fmt.Sprintf("the %s %s", pick(rng, movieAdjectives), pick(rng, movieNouns))
				m[4] = fmt.Sprintf("%d min", 80+rng.Intn(80))
			}
			return m
		},
	}
}

func specWAAM() *spec {
	return &spec{
		name: "WAAM", fullName: "Walmart-Amazon", domain: "electronics",
		schema: record.Schema{
			Names: []string{"title", "category", "brand", "modelno", "price"},
			Types: []record.AttrType{record.AttrText, record.AttrShort, record.AttrShort, record.AttrShort, record.AttrNumeric},
		},
		pos: 962, neg: 9280,
		// Electronics with domain-specific ungrammatical titles; the model
		// number is the key discriminator and often missing on one side.
		cleanProfile:    CorruptionProfile{Abbreviate: 0.22, Typo: 0.02, DropToken: 0.07, AddNoise: 0.25, NoiseTokens: 3, CaseFlip: 0.06, NumberFormat: 0.3},
		dirtyProfile:    CorruptionProfile{Abbreviate: 0.55, Typo: 0.04, DropToken: 0.15, AddNoise: 0.55, NoiseTokens: 6, Reorder: 0.15, CaseFlip: 0.12, NumberFormat: 0.5, MissingValue: 0.30, Truncate: 0.12},
		hardNegRatio:    0.50,
		relatedNegRatio: 0.35,
		sharedOnRelated: []int{1, 2}, // category, brand
		gen: func(rng *stats.RNG, serial int) entity {
			brand := pick(rng, productBrands)
			model := modelNumber(rng, serial)
			parts := []string{brand, pick(rng, productAdjectives), pick(rng, productTypes), model}
			// A third of electronics carry a generation/version marker, the
			// source of version-style hard negatives outside AMGO.
			if rng.Bool(0.33) {
				parts = append(parts, fmt.Sprintf("v%d.%d", 1+rng.Intn(4), rng.Intn(5)))
			}
			parts = append(parts, pick(rng, productColors))
			title := strings.Join(parts, " ")
			return entity{title, pick(rng, webProductCategories), brand, model, price(rng, 10, 800)}
		},
		mutate: func(e entity, rng *stats.RNG, serial int) entity {
			m := clone(e)
			toks := strings.Fields(m[0])
			if len(toks) == 6 && rng.Bool(0.5) {
				// Versioned product: the successor generation — same model
				// line, bumped version marker.
				toks[4] = fmt.Sprintf("v%d.%d", 1+rng.Intn(4), rng.Intn(5))
			} else {
				// Same brand and category, adjacent model in the lineup.
				model := modelNumber(rng, serial+257)
				toks[3] = model
				m[3] = model
			}
			m[0] = strings.Join(toks, " ")
			m[4] = price(rng, 10, 800)
			return m
		},
	}
}

func contains(pool []string, s string) bool {
	for _, p := range pool {
		if p == s {
			return true
		}
	}
	return false
}

// allSpecs returns the 11 dataset specs in the paper's table order.
func allSpecs() []*spec {
	return []*spec{
		specABT(), specWDC(), specDBAC(), specDBGO(), specFOZA(), specZOYE(),
		specAMGO(), specBEER(), specITAM(), specROIM(), specWAAM(),
	}
}
