// Package gmm implements the two-component Gaussian mixture model with
// expectation–maximisation that powers the ZeroER matcher. ZeroER's core
// observation (Wu et al., SIGMOD 2020) is that similarity vectors of
// matching pairs are distributed differently from those of non-matching
// pairs, so an unsupervised mixture over similarity space separates the
// classes without any labels.
//
// The implementation follows ZeroER's design at the level the study
// exercises: diagonal covariances with adaptive regularisation, a
// match-prior initialisation reflecting the rarity of matches, and a hard
// cap on the match-component weight that encodes ZeroER's "matches are
// rare" prior.
package gmm

import (
	"math"
	"sort"

	"repro/internal/stats"
)

// Config configures mixture fitting.
type Config struct {
	MaxIter  int     // EM iterations
	Tol      float64 // log-likelihood convergence tolerance
	RegVar   float64 // variance floor (adaptive regularisation)
	MaxPrior float64 // upper bound on the match-component prior
}

// DefaultConfig returns ZeroER's fitting configuration.
func DefaultConfig() Config {
	return Config{MaxIter: 200, Tol: 1e-6, RegVar: 1e-4, MaxPrior: 0.5}
}

// Mixture is a fitted two-component diagonal Gaussian mixture. Component 1
// is the match component, component 0 the non-match component.
type Mixture struct {
	dim    int
	prior  float64 // P(match)
	mean   [2][]float64
	vari   [2][]float64
	fitted bool
}

// Fit runs EM on the similarity vectors. Initialisation is deterministic
// given rng: the match component starts at the centroid of the top decile
// of mean similarity, the non-match component at the bottom half's
// centroid — mirroring ZeroER's seeding of the match component with the
// highest-similarity pairs.
func Fit(xs [][]float64, cfg Config, rng *stats.RNG) *Mixture {
	if len(xs) < 4 {
		// Not enough mass to estimate anything; return an uninformative
		// mixture that scores everything at the prior.
		return &Mixture{dim: dimOf(xs), prior: 0.1}
	}
	dim := len(xs[0])
	m := &Mixture{dim: dim, prior: 0.1, fitted: true}

	// Rank pairs by mean similarity for seeding.
	n := len(xs)
	meanSim := make([]float64, n)
	for i, x := range xs {
		meanSim[i] = stats.Mean(x)
	}
	idx := argsortDesc(meanSim)
	topK := n / 10
	if topK < 2 {
		topK = 2
	}
	m.mean[1] = centroid(xs, idx[:topK])
	m.mean[0] = centroid(xs, idx[n/2:])
	for c := 0; c < 2; c++ {
		m.vari[c] = make([]float64, dim)
		for d := 0; d < dim; d++ {
			m.vari[c][d] = 0.05
		}
	}

	resp := make([]float64, n) // responsibility of the match component
	prevLL := math.Inf(-1)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		// E-step.
		ll := 0.0
		for i, x := range xs {
			l1 := math.Log(m.prior) + m.logDensity(1, x)
			l0 := math.Log(1-m.prior) + m.logDensity(0, x)
			lse := logSumExp(l0, l1)
			resp[i] = math.Exp(l1 - lse)
			ll += lse
		}
		// M-step.
		sumR := 0.0
		for _, r := range resp {
			sumR += r
		}
		m.prior = stats.Clamp(sumR/float64(n), 1e-4, cfg.MaxPrior)
		for c := 0; c < 2; c++ {
			var weightSum float64
			mean := make([]float64, dim)
			for i, x := range xs {
				w := resp[i]
				if c == 0 {
					w = 1 - w
				}
				weightSum += w
				for d := 0; d < dim; d++ {
					mean[d] += w * x[d]
				}
			}
			if weightSum < 1e-9 {
				continue
			}
			for d := 0; d < dim; d++ {
				mean[d] /= weightSum
			}
			vari := make([]float64, dim)
			for i, x := range xs {
				w := resp[i]
				if c == 0 {
					w = 1 - w
				}
				for d := 0; d < dim; d++ {
					diff := x[d] - mean[d]
					vari[d] += w * diff * diff
				}
			}
			for d := 0; d < dim; d++ {
				vari[d] = vari[d]/weightSum + cfg.RegVar
			}
			m.mean[c], m.vari[c] = mean, vari
		}
		if math.Abs(ll-prevLL) < cfg.Tol*math.Abs(prevLL)+cfg.Tol {
			break
		}
		prevLL = ll
	}

	// ZeroER assumes the match component has the *higher* similarity; if EM
	// drifted into the mirror solution, swap the components.
	if stats.Mean(m.mean[1]) < stats.Mean(m.mean[0]) {
		m.mean[0], m.mean[1] = m.mean[1], m.mean[0]
		m.vari[0], m.vari[1] = m.vari[1], m.vari[0]
		m.prior = stats.Clamp(1-m.prior, 1e-4, cfg.MaxPrior)
	}
	return m
}

// MatchProb returns the posterior probability that x belongs to the match
// component.
func (m *Mixture) MatchProb(x []float64) float64 {
	if !m.fitted {
		return m.prior
	}
	l1 := math.Log(m.prior) + m.logDensity(1, x)
	l0 := math.Log(1-m.prior) + m.logDensity(0, x)
	return math.Exp(l1 - logSumExp(l0, l1))
}

// Prior returns the fitted match prior.
func (m *Mixture) Prior() float64 { return m.prior }

// logDensity computes the diagonal-Gaussian log density of component c.
func (m *Mixture) logDensity(c int, x []float64) float64 {
	ll := 0.0
	for d := 0; d < m.dim && d < len(x); d++ {
		v := m.vari[c][d]
		diff := x[d] - m.mean[c][d]
		ll += -0.5 * (math.Log(2*math.Pi*v) + diff*diff/v)
	}
	return ll
}

func logSumExp(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

func centroid(xs [][]float64, idx []int) []float64 {
	dim := len(xs[0])
	c := make([]float64, dim)
	if len(idx) == 0 {
		return c
	}
	for _, i := range idx {
		for d := 0; d < dim; d++ {
			c[d] += xs[i][d]
		}
	}
	for d := 0; d < dim; d++ {
		c[d] /= float64(len(idx))
	}
	return c
}

func argsortDesc(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	return idx
}

func dimOf(xs [][]float64) int {
	if len(xs) == 0 {
		return 0
	}
	return len(xs[0])
}
