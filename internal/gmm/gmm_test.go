package gmm

import (
	"testing"

	"repro/internal/stats"
)

// twoClusterData draws similarity-style vectors from two diagonal
// Gaussians: a low cluster (non-matches) and a high cluster (matches).
func twoClusterData(nLow, nHigh, dim int, rng *stats.RNG) (xs [][]float64, labels []bool) {
	for i := 0; i < nLow; i++ {
		v := make([]float64, dim)
		for d := range v {
			v[d] = stats.Clamp(rng.NormScaled(0.25, 0.08), 0, 1)
		}
		xs = append(xs, v)
		labels = append(labels, false)
	}
	for i := 0; i < nHigh; i++ {
		v := make([]float64, dim)
		for d := range v {
			v[d] = stats.Clamp(rng.NormScaled(0.85, 0.08), 0, 1)
		}
		xs = append(xs, v)
		labels = append(labels, true)
	}
	return xs, labels
}

func TestFitSeparatesClusters(t *testing.T) {
	rng := stats.NewRNG(2)
	xs, labels := twoClusterData(400, 60, 4, rng)
	m := Fit(xs, DefaultConfig(), rng.Split("fit"))
	correct := 0
	for i, x := range xs {
		if (m.MatchProb(x) >= 0.5) == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(xs)); acc < 0.98 {
		t.Fatalf("mixture accuracy %.3f on well-separated clusters", acc)
	}
}

func TestFitPriorReflectsSkew(t *testing.T) {
	rng := stats.NewRNG(3)
	xs, _ := twoClusterData(900, 100, 3, rng)
	m := Fit(xs, DefaultConfig(), rng.Split("fit"))
	if m.Prior() < 0.05 || m.Prior() > 0.2 {
		t.Fatalf("match prior %.3f, want near the true 0.1", m.Prior())
	}
}

func TestFitPriorCapped(t *testing.T) {
	rng := stats.NewRNG(5)
	// Majority-high data would push the prior above the cap.
	xs, _ := twoClusterData(100, 900, 3, rng)
	cfg := DefaultConfig()
	m := Fit(xs, cfg, rng.Split("fit"))
	if m.Prior() > cfg.MaxPrior+1e-9 {
		t.Fatalf("prior %.3f exceeds cap %.3f", m.Prior(), cfg.MaxPrior)
	}
}

func TestMatchComponentIsHighCluster(t *testing.T) {
	rng := stats.NewRNG(7)
	xs, _ := twoClusterData(300, 100, 2, rng)
	m := Fit(xs, DefaultConfig(), rng.Split("fit"))
	high := []float64{0.9, 0.9}
	low := []float64{0.2, 0.2}
	if m.MatchProb(high) <= m.MatchProb(low) {
		t.Fatal("match component not aligned with high-similarity cluster")
	}
}

func TestFitDegenerateInputs(t *testing.T) {
	rng := stats.NewRNG(9)
	// Too few points: uninformative mixture, still functional.
	m := Fit([][]float64{{0.5}, {0.6}}, DefaultConfig(), rng)
	if p := m.MatchProb([]float64{0.5}); p < 0 || p > 1 {
		t.Fatalf("degenerate mixture prob = %v", p)
	}
	// Identical points: no NaNs.
	same := make([][]float64, 50)
	for i := range same {
		same[i] = []float64{0.4, 0.4}
	}
	m = Fit(same, DefaultConfig(), rng.Split("same"))
	if p := m.MatchProb([]float64{0.4, 0.4}); p != p || p < 0 || p > 1 {
		t.Fatalf("identical-point mixture prob = %v", p)
	}
}

func TestFitDeterministic(t *testing.T) {
	build := func() float64 {
		rng := stats.NewRNG(11)
		xs, _ := twoClusterData(200, 40, 3, rng)
		m := Fit(xs, DefaultConfig(), rng.Split("fit"))
		return m.MatchProb([]float64{0.7, 0.7, 0.7})
	}
	if build() != build() {
		t.Fatal("mixture fitting not deterministic for a fixed seed")
	}
}

func TestMatchProbRange(t *testing.T) {
	rng := stats.NewRNG(13)
	xs, _ := twoClusterData(200, 50, 3, rng)
	m := Fit(xs, DefaultConfig(), rng.Split("fit"))
	for _, x := range xs {
		p := m.MatchProb(x)
		if p < 0 || p > 1 || p != p {
			t.Fatalf("posterior out of range: %v", p)
		}
	}
}
