// Package par provides the deterministic parallel-execution substrate of
// the study: a small indexed worker pool that fans independent jobs across
// goroutines while keeping every observable output identical to a
// sequential run.
//
// The design rule is "indexed result slots, not channels in completion
// order": each job writes only into its own index, so the merge order —
// and therefore every table, figure and statistic downstream — is fixed by
// the job index, never by goroutine scheduling. Combined with the
// per-cell seeded RNG streams of internal/stats, this makes parallel
// evaluation byte-identical to the sequential path.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Hooks observes pool scheduling. The fields are plain funcs so the
// observability layer can feed pool timings into its own registry without
// this package importing it.
type Hooks struct {
	// QueueWait receives, per job, the time between pool entry (the Do
	// call) and the job starting on a worker.
	QueueWait func(time.Duration)
	// JobRun receives each job's execution time.
	JobRun func(time.Duration)
}

// hooks is the process-wide hook installation; nil (the default) keeps
// Do's fast path timing-free.
var hooks atomic.Pointer[Hooks]

// SetHooks installs h as the pool's observer (nil uninstalls). Safe to
// call concurrently with running pools; jobs already started keep the
// hooks they saw at Do entry.
func SetHooks(h *Hooks) { hooks.Store(h) }

// Workers resolves a parallelism knob to a concrete worker count: values
// greater than zero are taken literally, anything else means "one worker
// per available CPU" (runtime.GOMAXPROCS(0)).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Do runs jobs 0..n-1 across at most `workers` goroutines (resolved via
// Workers) and waits for all of them. Jobs must be independent and write
// their results into per-index slots owned by the caller. If any jobs
// fail, the error of the lowest-indexed failing job is returned, so the
// reported error does not depend on scheduling.
//
// With one worker the jobs run inline in index order, which is the exact
// sequential semantics the parallel path must reproduce.
func Do(n, workers int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if hk := hooks.Load(); hk != nil {
		inner := job
		entered := time.Now()
		job = func(i int) error {
			started := time.Now()
			if hk.QueueWait != nil {
				hk.QueueWait(started.Sub(entered))
			}
			err := inner(i)
			if hk.JobRun != nil {
				hk.JobRun(time.Since(started))
			}
			return err
		}
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = job(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// OrderedNotifier serializes out-of-order completion events into in-order
// callbacks from a single goroutine. Workers report completed indices via
// Done; the callback fires for index i only after indices 0..i-1 have
// fired, so progress output reads exactly as it would sequentially.
type OrderedNotifier struct {
	ch   chan int
	done sync.WaitGroup
}

// NewOrderedNotifier starts the notifier's emitter goroutine. notify may
// be nil, in which case events are swallowed (callers don't need to guard
// their Done calls). Close must be called to stop the goroutine.
func NewOrderedNotifier(n int, notify func(i int)) *OrderedNotifier {
	o := &OrderedNotifier{ch: make(chan int, n+1)}
	o.done.Add(1)
	go func() {
		defer o.done.Done()
		pending := make(map[int]bool, n)
		next := 0
		for i := range o.ch {
			pending[i] = true
			for pending[next] {
				delete(pending, next)
				if notify != nil {
					notify(next)
				}
				next++
			}
		}
	}()
	return o
}

// Done reports that index i has completed. Safe to call from any
// goroutine.
func (o *OrderedNotifier) Done(i int) { o.ch <- i }

// Close drains the notifier and blocks until every in-order callback has
// fired. Call exactly once, after all Done calls.
func (o *OrderedNotifier) Close() {
	close(o.ch)
	o.done.Wait()
}
