package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit worker count not honoured")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) {
		t.Fatal("zero should resolve to GOMAXPROCS")
	}
	if Workers(-5) != runtime.GOMAXPROCS(0) {
		t.Fatal("negative should resolve to GOMAXPROCS")
	}
}

func TestDoRunsEveryJobOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		n := 100
		counts := make([]int32, n)
		err := Do(n, workers, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestDoEmpty(t *testing.T) {
	if err := Do(0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestDoReturnsLowestIndexedError(t *testing.T) {
	wantErr := errors.New("job 3 failed")
	err := Do(10, 4, func(i int) error {
		switch i {
		case 3:
			return wantErr
		case 7:
			return errors.New("job 7 failed")
		}
		return nil
	})
	if err != wantErr {
		t.Fatalf("got %v, want the lowest-indexed error", err)
	}
}

func TestDoMoreWorkersThanJobs(t *testing.T) {
	var ran int32
	if err := Do(2, 64, func(i int) error {
		atomic.AddInt32(&ran, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("ran %d jobs, want 2", ran)
	}
}

func TestOrderedNotifierFiresInOrder(t *testing.T) {
	n := 50
	var got []int
	o := NewOrderedNotifier(n, func(i int) { got = append(got, i) })
	// Report completions in a scrambled order.
	for i := n - 1; i >= 0; i -= 2 {
		o.Done(i)
	}
	for i := n - 2; i >= 0; i -= 2 {
		o.Done(i)
	}
	o.Close()
	if len(got) != n {
		t.Fatalf("fired %d notifications, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("notification %d fired as %d: order not sequential", i, v)
		}
	}
}

func TestOrderedNotifierNilCallback(t *testing.T) {
	o := NewOrderedNotifier(4, nil)
	for i := 0; i < 4; i++ {
		o.Done(i)
	}
	o.Close() // must not hang or panic
}

func BenchmarkDoOverhead(b *testing.B) {
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = Do(64, w, func(int) error { return nil })
			}
		})
	}
}
