// Package cluster turns pairwise match decisions into entity clusters —
// the step after matching in a deduplication pipeline. Matchers emit
// independent pair decisions; a consistent view of the data needs
// transitive closure (if a≡b and b≡c then a, b, c are one entity), which
// union-find provides, plus hygiene for the conflicts that closure
// surfaces (giant clusters glued together by a few false positives).
package cluster

import (
	"sort"

	"repro/internal/record"
)

// Edge is one positive match decision with its confidence.
type Edge struct {
	A, B string // record IDs
	// Score is the matcher's confidence in [0,1]; pairwise decisions
	// without scores can use 1.
	Score float64
}

// Config controls cluster construction.
type Config struct {
	// MinScore drops edges below this confidence before closure.
	MinScore float64
	// MaxClusterSize, when positive, re-splits clusters larger than this
	// by removing their weakest edges — the standard guard against
	// false-positive chains gluing unrelated entities together.
	MaxClusterSize int
}

// Cluster is one resolved entity: the IDs of all records referring to it.
type Cluster struct {
	// Members holds the record IDs, sorted.
	Members []string
}

// Size returns the member count.
func (c Cluster) Size() int { return len(c.Members) }

// unionFind is a weighted quick-union with path compression.
type unionFind struct {
	parent map[string]string
	size   map[string]int
}

func newUnionFind() *unionFind {
	return &unionFind{parent: make(map[string]string), size: make(map[string]int)}
}

func (u *unionFind) add(x string) {
	if _, ok := u.parent[x]; !ok {
		u.parent[x] = x
		u.size[x] = 1
	}
}

func (u *unionFind) find(x string) string {
	root := x
	for u.parent[root] != root {
		root = u.parent[root]
	}
	// Path compression.
	for u.parent[x] != root {
		u.parent[x], x = root, u.parent[x]
	}
	return root
}

func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}

// Resolve builds entity clusters from match edges. Records carrying no
// accepted edge form singleton clusters when their IDs are supplied via
// allIDs (pass nil to cluster only matched records).
func Resolve(edges []Edge, allIDs []string, cfg Config) []Cluster {
	u := newUnionFind()
	for _, id := range allIDs {
		u.add(id)
	}
	kept := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.Score < cfg.MinScore {
			continue
		}
		u.add(e.A)
		u.add(e.B)
		kept = append(kept, e)
		u.union(e.A, e.B)
	}

	groups := make(map[string][]string)
	for id := range u.parent {
		root := u.find(id)
		groups[root] = append(groups[root], id)
	}

	var clusters []Cluster
	for _, members := range groups {
		sort.Strings(members)
		if cfg.MaxClusterSize > 0 && len(members) > cfg.MaxClusterSize {
			clusters = append(clusters, splitOversized(members, kept, cfg)...)
			continue
		}
		clusters = append(clusters, Cluster{Members: members})
	}
	sort.Slice(clusters, func(i, j int) bool {
		if clusters[i].Size() != clusters[j].Size() {
			return clusters[i].Size() > clusters[j].Size()
		}
		return clusters[i].Members[0] < clusters[j].Members[0]
	})
	return clusters
}

// splitOversized re-clusters one oversized group using only its strongest
// edges: edges are re-admitted in descending score order while no
// component exceeds the cap.
func splitOversized(members []string, edges []Edge, cfg Config) []Cluster {
	inGroup := make(map[string]bool, len(members))
	for _, m := range members {
		inGroup[m] = true
	}
	var local []Edge
	for _, e := range edges {
		if inGroup[e.A] && inGroup[e.B] {
			local = append(local, e)
		}
	}
	sort.Slice(local, func(i, j int) bool { return local[i].Score > local[j].Score })

	u := newUnionFind()
	for _, m := range members {
		u.add(m)
	}
	for _, e := range local {
		ra, rb := u.find(e.A), u.find(e.B)
		if ra == rb {
			continue
		}
		if u.size[ra]+u.size[rb] > cfg.MaxClusterSize {
			continue // admitting this edge would overshoot the cap
		}
		u.union(e.A, e.B)
	}
	groups := make(map[string][]string)
	for _, m := range members {
		root := u.find(m)
		groups[root] = append(groups[root], m)
	}
	out := make([]Cluster, 0, len(groups))
	for _, ms := range groups {
		sort.Strings(ms)
		out = append(out, Cluster{Members: ms})
	}
	return out
}

// FromPredictions builds edges from a prediction run: one edge per pair
// predicted positive.
func FromPredictions(pairs []record.Pair, preds []bool, scores []float64) []Edge {
	var edges []Edge
	for i, p := range pairs {
		if i < len(preds) && preds[i] {
			score := 1.0
			if i < len(scores) {
				score = scores[i]
			}
			edges = append(edges, Edge{A: p.Left.ID, B: p.Right.ID, Score: score})
		}
	}
	return edges
}

// Metrics evaluates clusters against ground-truth entity assignments
// (record ID -> entity key) with pairwise precision/recall/F1, the
// standard clustering-quality measure in entity resolution.
type Metrics struct {
	Precision, Recall, F1 float64
}

// Evaluate computes pairwise clustering metrics.
func Evaluate(clusters []Cluster, truth map[string]string) Metrics {
	// Predicted co-clustered pairs.
	var tp, predPairs int
	for _, c := range clusters {
		for i := 0; i < len(c.Members); i++ {
			for j := i + 1; j < len(c.Members); j++ {
				predPairs++
				ti, okI := truth[c.Members[i]]
				tj, okJ := truth[c.Members[j]]
				if okI && okJ && ti == tj {
					tp++
				}
			}
		}
	}
	// True co-entity pairs.
	byEntity := make(map[string]int)
	for _, e := range truth {
		byEntity[e]++
	}
	truePairs := 0
	for _, n := range byEntity {
		truePairs += n * (n - 1) / 2
	}
	var m Metrics
	if predPairs > 0 {
		m.Precision = float64(tp) / float64(predPairs)
	}
	if truePairs > 0 {
		m.Recall = float64(tp) / float64(truePairs)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}
