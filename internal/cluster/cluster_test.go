package cluster

import (
	"testing"

	"repro/internal/record"
)

func TestResolveTransitiveClosure(t *testing.T) {
	edges := []Edge{
		{A: "a", B: "b", Score: 0.9},
		{A: "b", B: "c", Score: 0.8},
		{A: "x", B: "y", Score: 0.7},
	}
	clusters := Resolve(edges, nil, Config{})
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(clusters))
	}
	if clusters[0].Size() != 3 || clusters[0].Members[0] != "a" {
		t.Fatalf("closure cluster wrong: %+v", clusters[0])
	}
}

func TestResolveSingletons(t *testing.T) {
	edges := []Edge{{A: "a", B: "b", Score: 1}}
	clusters := Resolve(edges, []string{"a", "b", "lonely"}, Config{})
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2 (pair + singleton)", len(clusters))
	}
	found := false
	for _, c := range clusters {
		if c.Size() == 1 && c.Members[0] == "lonely" {
			found = true
		}
	}
	if !found {
		t.Fatal("singleton lost")
	}
}

func TestResolveMinScore(t *testing.T) {
	edges := []Edge{
		{A: "a", B: "b", Score: 0.9},
		{A: "b", B: "c", Score: 0.2}, // below threshold
	}
	clusters := Resolve(edges, nil, Config{MinScore: 0.5})
	for _, c := range clusters {
		for _, m := range c.Members {
			if m == "c" && c.Size() > 1 {
				t.Fatal("low-confidence edge was used")
			}
		}
	}
}

func TestResolveMaxClusterSize(t *testing.T) {
	// A chain of strong edges with one weak glue edge: the cap must cut
	// through the weak link.
	edges := []Edge{
		{A: "a", B: "b", Score: 0.95},
		{A: "b", B: "c", Score: 0.94},
		{A: "c", B: "d", Score: 0.15}, // the false-positive glue
		{A: "d", B: "e", Score: 0.93},
		{A: "e", B: "f", Score: 0.92},
	}
	clusters := Resolve(edges, nil, Config{MaxClusterSize: 3})
	for _, c := range clusters {
		if c.Size() > 3 {
			t.Fatalf("cluster exceeds cap: %+v", c)
		}
	}
	// The strong sub-chains must survive intact.
	sizes := map[int]int{}
	for _, c := range clusters {
		sizes[c.Size()]++
	}
	if sizes[3] != 2 {
		t.Fatalf("expected two 3-clusters, got %v", sizes)
	}
}

func TestFromPredictions(t *testing.T) {
	pairs := []record.Pair{
		{Left: record.Record{ID: "a"}, Right: record.Record{ID: "b"}},
		{Left: record.Record{ID: "c"}, Right: record.Record{ID: "d"}},
	}
	edges := FromPredictions(pairs, []bool{true, false}, []float64{0.8, 0.9})
	if len(edges) != 1 || edges[0].A != "a" || edges[0].Score != 0.8 {
		t.Fatalf("edges = %+v", edges)
	}
	// Without scores, default confidence 1.
	edges = FromPredictions(pairs, []bool{true, true}, nil)
	if len(edges) != 2 || edges[0].Score != 1 {
		t.Fatalf("default-score edges = %+v", edges)
	}
}

func TestEvaluatePerfect(t *testing.T) {
	clusters := []Cluster{
		{Members: []string{"a", "b"}},
		{Members: []string{"c"}},
	}
	truth := map[string]string{"a": "e1", "b": "e1", "c": "e2"}
	m := Evaluate(clusters, truth)
	if m.Precision != 1 || m.Recall != 1 || m.F1 != 1 {
		t.Fatalf("perfect clustering metrics: %+v", m)
	}
}

func TestEvaluateOverMerged(t *testing.T) {
	clusters := []Cluster{{Members: []string{"a", "b", "c"}}}
	truth := map[string]string{"a": "e1", "b": "e1", "c": "e2"}
	m := Evaluate(clusters, truth)
	if m.Recall != 1 {
		t.Fatalf("recall = %v, want 1", m.Recall)
	}
	if m.Precision >= 1 {
		t.Fatalf("over-merged precision = %v, want < 1", m.Precision)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	m := Evaluate(nil, nil)
	if m.F1 != 0 {
		t.Fatalf("empty metrics: %+v", m)
	}
}

func TestUnionFindPathCompression(t *testing.T) {
	u := newUnionFind()
	ids := []string{"a", "b", "c", "d", "e"}
	for _, id := range ids {
		u.add(id)
	}
	u.union("a", "b")
	u.union("b", "c")
	u.union("c", "d")
	root := u.find("d")
	for _, id := range []string{"a", "b", "c", "d"} {
		if u.find(id) != root {
			t.Fatalf("%s not in the merged component", id)
		}
	}
	if u.find("e") == root {
		t.Fatal("e wrongly merged")
	}
}
