// Package core is the study runner: it wires the matchers, the
// leave-one-dataset-out harness, the cost model and the statistics into
// the concrete experiments of the paper — Tables 1, 3, 4, 5 and 6,
// Figures 3 and 4, and the statistical analyses behind Findings 5 and 6.
package core

import (
	"fmt"

	"repro/internal/datasets"
	"repro/internal/eval"
	"repro/internal/lm"
	"repro/internal/matchers"
)

// MatcherSpec describes one row of a quality table.
type MatcherSpec struct {
	// Label is the row label as in the paper, e.g. "MatchGPT [GPT-4]".
	Label string
	// ParamsMillions is the underlying model size (0 for parameter-free).
	ParamsMillions float64
	// Factory builds a fresh matcher per evaluation run.
	Factory eval.MatcherFactory
	// Bracketed reports whether this matcher's score on the target must be
	// bracketed (training contamination, e.g. Jellyfish's seen datasets).
	Bracketed func(target string) bool
}

func never(string) bool { return false }

// Table3Specs returns the 14 matcher configurations of Table 3 in row
// order.
func Table3Specs() []MatcherSpec {
	return []MatcherSpec{
		{Label: "StringSim", Factory: func() matchers.Matcher { return matchers.NewStringSim() }, Bracketed: never},
		{Label: "ZeroER", Factory: func() matchers.Matcher { return matchers.NewZeroER() }, Bracketed: never},
		{Label: "Ditto", ParamsMillions: lm.BERT.ParamsMillions,
			Factory: func() matchers.Matcher { return matchers.NewDitto() }, Bracketed: never},
		{Label: "Unicorn", ParamsMillions: lm.DeBERTa.ParamsMillions,
			Factory: func() matchers.Matcher { return matchers.NewUnicorn() }, Bracketed: never},
		{Label: "AnyMatch [GPT-2]", ParamsMillions: lm.GPT2.ParamsMillions,
			Factory: func() matchers.Matcher { return matchers.NewAnyMatchGPT2() }, Bracketed: never},
		{Label: "AnyMatch [T5]", ParamsMillions: lm.T5.ParamsMillions,
			Factory: func() matchers.Matcher { return matchers.NewAnyMatchT5() }, Bracketed: never},
		{Label: "AnyMatch [LLaMA3.2]", ParamsMillions: lm.LLaMA32.ParamsMillions,
			Factory: func() matchers.Matcher { return matchers.NewAnyMatchLLaMA() }, Bracketed: never},
		{Label: "Jellyfish", ParamsMillions: lm.LLaMA213B.ParamsMillions,
			Factory:   func() matchers.Matcher { return matchers.NewJellyfish() },
			Bracketed: func(target string) bool { return matchers.JellyfishSeenDatasets[target] }},
		{Label: "MatchGPT [Mixtral-8x7B]", ParamsMillions: lm.Mixtral8x7B.ParamsMillions,
			Factory: func() matchers.Matcher { return matchers.NewMatchGPT(lm.Mixtral8x7B) }, Bracketed: never},
		{Label: "MatchGPT [SOLAR]", ParamsMillions: lm.SOLAR.ParamsMillions,
			Factory: func() matchers.Matcher { return matchers.NewMatchGPT(lm.SOLAR) }, Bracketed: never},
		{Label: "MatchGPT [Beluga2]", ParamsMillions: lm.Beluga2.ParamsMillions,
			Factory: func() matchers.Matcher { return matchers.NewMatchGPT(lm.Beluga2) }, Bracketed: never},
		{Label: "MatchGPT [GPT-4o-Mini]", ParamsMillions: lm.GPT4oMini.ParamsMillions,
			Factory: func() matchers.Matcher { return matchers.NewMatchGPT(lm.GPT4oMini) }, Bracketed: never},
		{Label: "MatchGPT [GPT-3.5-Turbo]", ParamsMillions: lm.GPT35Turbo.ParamsMillions,
			Factory: func() matchers.Matcher { return matchers.NewMatchGPT(lm.GPT35Turbo) }, Bracketed: never},
		{Label: "MatchGPT [GPT-4]", ParamsMillions: lm.GPT4.ParamsMillions,
			Factory: func() matchers.Matcher { return matchers.NewMatchGPT(lm.GPT4) }, Bracketed: never},
	}
}

// Table4Specs returns the nine demonstration-strategy configurations of
// Table 4 (three GPT models × three strategies), in row order.
func Table4Specs() []MatcherSpec {
	models := []lm.Profile{lm.GPT4oMini, lm.GPT35Turbo, lm.GPT4}
	strategies := []lm.DemoStrategy{lm.DemoNone, lm.DemoHandPicked, lm.DemoRandom}
	var specs []MatcherSpec
	for _, m := range models {
		m := m
		for _, s := range strategies {
			s := s
			specs = append(specs, MatcherSpec{
				Label:          fmt.Sprintf("%s / %s", m.Name, s),
				ParamsMillions: m.ParamsMillions,
				Factory:        func() matchers.Matcher { return matchers.NewMatchGPTWithDemos(m, s) },
				Bracketed:      never,
			})
		}
	}
	return specs
}

// Table4RAGSpecs extends the Table 4 demonstration study with the
// retrieval-augmented strategy the paper's §5.1 names as future work: for
// each of the three GPT models, the no-demonstration baseline and the RAG
// variant that retrieves per-pair demonstrations from the transfer
// datasets.
func Table4RAGSpecs() []MatcherSpec {
	models := []lm.Profile{lm.GPT4oMini, lm.GPT35Turbo, lm.GPT4}
	var specs []MatcherSpec
	for _, m := range models {
		m := m
		specs = append(specs,
			MatcherSpec{
				Label:          fmt.Sprintf("%s / none", m.Name),
				ParamsMillions: m.ParamsMillions,
				Factory:        func() matchers.Matcher { return matchers.NewMatchGPT(m) },
				Bracketed:      never,
			},
			MatcherSpec{
				Label:          fmt.Sprintf("%s / rag-retrieved", m.Name),
				ParamsMillions: m.ParamsMillions,
				Factory:        func() matchers.Matcher { return matchers.NewMatchGPTRAG(m) },
				Bracketed:      never,
			},
		)
	}
	return specs
}

// QualityResults holds a full quality-table run: per-spec, per-dataset
// evaluation results.
type QualityResults struct {
	Specs   []MatcherSpec
	Results [][]eval.Result // [spec][dataset]
}

// RunQuality evaluates every spec on every target dataset under the
// harness's protocol. Progress callbacks (may be nil) fire per completed
// spec, since full runs take minutes.
//
// When the harness's parallelism resolves to more than one worker, the
// (spec, target, seed) cells of all specs are scheduled on one shared
// worker pool; the results are identical to the sequential path, and the
// progress callback still fires once per spec, in spec order, from a
// single goroutine.
func RunQuality(h *eval.Harness, specs []MatcherSpec, progress func(label string)) (*QualityResults, error) {
	out := &QualityResults{Specs: specs}
	if h.Parallelism() > 1 {
		factories := make([]eval.MatcherFactory, len(specs))
		labels := make([]string, len(specs))
		for i, spec := range specs {
			factories[i] = spec.Factory
			labels[i] = spec.Label
		}
		var notify func(int)
		if progress != nil {
			notify = func(spec int) { progress(specs[spec].Label) }
		}
		results, err := h.EvaluateSpecsLabeled(factories, labels, notify)
		if err != nil {
			return nil, fmt.Errorf("core: evaluating quality table: %w", err)
		}
		out.Results = results
		return out, nil
	}
	for _, spec := range specs {
		results, err := h.EvaluateAllLabeled(spec.Factory, spec.Label)
		if err != nil {
			return nil, fmt.Errorf("core: evaluating %s: %w", spec.Label, err)
		}
		out.Results = append(out.Results, results)
		if progress != nil {
			progress(spec.Label)
		}
	}
	return out, nil
}

// MacroMeanUncontaminated computes the mean column for a spec, excluding
// bracketed datasets is NOT what the paper does (it reports the mean over
// all datasets but brackets the contaminated cells); this helper therefore
// averages everything and mirrors the paper's "Mean" column.
func (q *QualityResults) MacroMean(specIdx int) (mean, std float64) {
	return eval.MacroMean(q.Results[specIdx])
}

// DatasetNames returns the dataset order of the results.
func DatasetNames() []string { return datasets.Names() }
