package core

import (
	"strings"
	"testing"

	"repro/internal/eval"
)

func TestTable3SpecsRoster(t *testing.T) {
	specs := Table3Specs()
	if len(specs) != 14 {
		t.Fatalf("Table 3 has %d rows, want 14 (the paper evaluates 14 matchers)", len(specs))
	}
	wantOrder := []string{
		"StringSim", "ZeroER", "Ditto", "Unicorn",
		"AnyMatch [GPT-2]", "AnyMatch [T5]", "AnyMatch [LLaMA3.2]",
		"Jellyfish", "MatchGPT [Mixtral-8x7B]", "MatchGPT [SOLAR]",
		"MatchGPT [Beluga2]", "MatchGPT [GPT-4o-Mini]",
		"MatchGPT [GPT-3.5-Turbo]", "MatchGPT [GPT-4]",
	}
	for i, s := range specs {
		if s.Label != wantOrder[i] {
			t.Errorf("row %d: %q, want %q", i, s.Label, wantOrder[i])
		}
		if s.Factory == nil || s.Bracketed == nil {
			t.Errorf("%s: missing factory or bracket predicate", s.Label)
		}
	}
	// Only Jellyfish brackets anything, and exactly the six seen datasets.
	for _, s := range specs {
		n := 0
		for _, d := range DatasetNames() {
			if s.Bracketed(d) {
				n++
			}
		}
		switch s.Label {
		case "Jellyfish":
			if n != 6 {
				t.Errorf("Jellyfish brackets %d datasets, want 6", n)
			}
		default:
			if n != 0 {
				t.Errorf("%s brackets %d datasets, want 0", s.Label, n)
			}
		}
	}
}

func TestTable4SpecsRoster(t *testing.T) {
	specs := Table4Specs()
	if len(specs) != 9 {
		t.Fatalf("Table 4 has %d rows, want 9 (3 models × 3 strategies)", len(specs))
	}
	for _, want := range []string{"GPT-4o-Mini / none", "GPT-3.5-Turbo / hand-picked", "GPT-4 / random-selected"} {
		found := false
		for _, s := range specs {
			if s.Label == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing Table 4 row %q", want)
		}
	}
}

func TestTable1Render(t *testing.T) {
	out := Table1()
	for _, want := range []string{"ABT", "WAAM", "1028", "9280", "restaurant"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestTable5And6Render(t *testing.T) {
	t5 := Table5()
	for _, want := range []string{"BERT", "SOLAR", "Ditto", "MatchGPT", "8192"} {
		if !strings.Contains(t5, want) {
			t.Errorf("Table 5 missing %q", want)
		}
	}
	t6, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MatchGPT [GPT-4]", "Ditto [BERT]", "OpenAI Batch API", "Together.ai"} {
		if !strings.Contains(t6, want) {
			t.Errorf("Table 6 missing %q", want)
		}
	}
}

// quickQuality runs a tiny two-matcher quality experiment for the
// table/figure/finding plumbing tests.
func quickQuality(t *testing.T) *QualityResults {
	t.Helper()
	h := eval.NewHarness(eval.Config{Seeds: []uint64{1, 2}, MaxTest: 120})
	specs := []MatcherSpec{
		Table3Specs()[0],  // StringSim
		Table3Specs()[12], // MatchGPT [GPT-3.5-Turbo] (Finding 5 normaliser)
		Table3Specs()[13], // MatchGPT [GPT-4]
	}
	q, err := RunQuality(h, specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestRunQualityShape(t *testing.T) {
	q := quickQuality(t)
	if len(q.Results) != 3 {
		t.Fatalf("results for %d specs", len(q.Results))
	}
	for i := range q.Results {
		if len(q.Results[i]) != 11 {
			t.Fatalf("spec %d evaluated on %d datasets", i, len(q.Results[i]))
		}
		for _, r := range q.Results[i] {
			if len(r.F1s) != 2 {
				t.Fatalf("expected 2 seeds, got %d", len(r.F1s))
			}
		}
	}
	mean, _ := q.MacroMean(2)
	if mean <= 0 || mean > 100 {
		t.Fatalf("macro mean %v out of range", mean)
	}
}

func TestQualityTableAssembly(t *testing.T) {
	q := quickQuality(t)
	tab := QualityTable("T", q)
	if len(tab.Columns) != 12 { // 11 datasets + Mean
		t.Fatalf("columns = %d", len(tab.Columns))
	}
	out := tab.Render()
	if !strings.Contains(out, "StringSim") || !strings.Contains(out, "MatchGPT [GPT-4]") {
		t.Fatalf("render missing rows:\n%s", out)
	}
}

func TestFigures(t *testing.T) {
	q := quickQuality(t)
	f3, err := Figure3(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f3, "GPT-4") || !strings.Contains(f3, "cost per 1K tokens") {
		t.Fatalf("Figure 3 content:\n%s", f3)
	}
	f4 := Figure4(q)
	if !strings.Contains(f4, "model size") {
		t.Fatalf("Figure 4 content:\n%s", f4)
	}
}

func TestFindingsPlumbing(t *testing.T) {
	q := quickQuality(t)
	f5, err := Finding5(q)
	if err != nil {
		t.Fatal(err)
	}
	if f5.SharedCount == 0 || f5.NonSharedCount == 0 {
		t.Fatalf("t-test groups empty: %+v", f5)
	}
	if f5.Test.P < 0 || f5.Test.P > 1 {
		t.Fatalf("p-value %v out of range", f5.Test.P)
	}
	f6 := Finding6(q)
	if len(f6.PerMatcher) == 0 {
		t.Fatal("no Spearman correlations computed")
	}
	for label, rho := range f6.PerMatcher {
		if rho < -1 || rho > 1 {
			t.Fatalf("%s: rho %v out of range", label, rho)
		}
	}
	out := RenderFindings(f5, f6)
	if !strings.Contains(out, "Finding 5") || !strings.Contains(out, "Finding 6") {
		t.Fatalf("findings render:\n%s", out)
	}
}

func TestFinding5RequiresNormaliser(t *testing.T) {
	h := eval.NewHarness(eval.Config{Seeds: []uint64{1}, MaxTest: 60})
	q, err := RunQuality(h, []MatcherSpec{Table3Specs()[0]}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Finding5(q); err == nil {
		t.Fatal("Finding 5 without GPT-3.5 row should error")
	}
}

func TestModelNameForSpecCoversTable3(t *testing.T) {
	for _, s := range Table3Specs() {
		name := modelNameForSpec(s.Label)
		switch s.Label {
		case "StringSim", "ZeroER", "Jellyfish":
			if name != "" {
				t.Errorf("%s should have no cost-model mapping", s.Label)
			}
		default:
			if name == "" {
				t.Errorf("%s missing cost-model mapping", s.Label)
			}
		}
	}
}
