package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/datasets"
	"repro/internal/stats"
)

// Finding5Result holds the domain-overlap t-test (Finding 5): do datasets
// that share a domain with a transfer dataset score higher than datasets
// that do not?
type Finding5Result struct {
	Test           stats.TTestResult
	SharedMean     float64
	NonSharedMean  float64
	SharedCount    int
	NonSharedCount int
}

// Finding5 runs the paper's two-sample Welch t-test. Per the paper's
// protocol, each matcher's per-dataset F1 is normalised by subtracting the
// per-dataset mean F1 of MatchGPT [GPT-3.5-Turbo] to put all scores on a
// common scale, then scores are grouped by whether the dataset shares a
// domain with another benchmark dataset.
func Finding5(q *QualityResults) (Finding5Result, error) {
	names := DatasetNames()
	// Locate the normaliser row.
	refIdx := -1
	for i, s := range q.Specs {
		if s.Label == "MatchGPT [GPT-3.5-Turbo]" {
			refIdx = i
		}
	}
	if refIdx < 0 {
		return Finding5Result{}, fmt.Errorf("core: Finding 5 needs the MatchGPT [GPT-3.5-Turbo] row as normaliser")
	}
	ref := make(map[string]float64)
	for _, r := range q.Results[refIdx] {
		ref[r.Target] = r.Mean()
	}

	var shared, nonShared []float64
	for i, spec := range q.Specs {
		if i == refIdx || spec.Label == "StringSim" || spec.Label == "ZeroER" {
			continue // the paper's analysis covers the LM-based matchers
		}
		for j, r := range q.Results[i] {
			if spec.Bracketed(names[j]) {
				continue
			}
			norm := r.Mean() - ref[r.Target]
			if datasets.SharedDomain(r.Target) {
				shared = append(shared, norm)
			} else {
				nonShared = append(nonShared, norm)
			}
		}
	}
	test := stats.WelchTTest(shared, nonShared)
	return Finding5Result{
		Test:          test,
		SharedMean:    stats.Mean(shared),
		NonSharedMean: stats.Mean(nonShared),
		SharedCount:   len(shared), NonSharedCount: len(nonShared),
	}, nil
}

// Finding6Result holds the skew-correlation analysis (Finding 6): the
// Spearman rank correlation between predictive quality and label imbalance
// per matcher, and the SLM/LLM averages the paper compares.
type Finding6Result struct {
	PerMatcher map[string]float64
	SLMAvg     float64
	LLMAvg     float64
	MaxAbs     float64
}

// slmLabels identifies the fine-tuned small-language-model rows.
var slmLabels = map[string]bool{
	"Ditto": true, "Unicorn": true,
	"AnyMatch [GPT-2]": true, "AnyMatch [T5]": true, "AnyMatch [LLaMA3.2]": true,
}

// Finding6 computes the Spearman correlation between each LM matcher's
// per-dataset F1 and the dataset imbalance rate.
func Finding6(q *QualityResults) Finding6Result {
	imbalance := make(map[string]float64)
	for _, s := range datasets.Table1() {
		imbalance[s.Name] = float64(s.Neg) / float64(s.Pos+s.Neg)
	}
	out := Finding6Result{PerMatcher: make(map[string]float64)}
	var slmSum, llmSum float64
	var slmN, llmN int
	for i, spec := range q.Specs {
		if spec.Label == "StringSim" || spec.Label == "ZeroER" {
			continue
		}
		var f1s, imb []float64
		for _, r := range q.Results[i] {
			f1s = append(f1s, r.Mean())
			imb = append(imb, imbalance[r.Target])
		}
		rho := stats.Spearman(f1s, imb)
		out.PerMatcher[spec.Label] = rho
		if abs := absF(rho); abs > out.MaxAbs {
			out.MaxAbs = abs
		}
		if slmLabels[spec.Label] {
			slmSum += absF(rho)
			slmN++
		} else {
			llmSum += absF(rho)
			llmN++
		}
	}
	if slmN > 0 {
		out.SLMAvg = slmSum / float64(slmN)
	}
	if llmN > 0 {
		out.LLMAvg = llmSum / float64(llmN)
	}
	return out
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// RenderFindings formats both statistical analyses.
func RenderFindings(f5 Finding5Result, f6 Finding6Result) string {
	var b strings.Builder
	b.WriteString("Finding 5 — Domain overlap t-test (Welch two-sample):\n")
	fmt.Fprintf(&b, "  shared-domain datasets:    n=%d, normalised mean F1 delta %+.2f\n", f5.SharedCount, f5.SharedMean)
	fmt.Fprintf(&b, "  non-shared-domain datasets: n=%d, normalised mean F1 delta %+.2f\n", f5.NonSharedCount, f5.NonSharedMean)
	fmt.Fprintf(&b, "  t=%.3f, df=%.1f, p=%.4f -> ", f5.Test.T, f5.Test.DF, f5.Test.P)
	if f5.Test.Significant(0.05) && f5.SharedMean > f5.NonSharedMean {
		b.WriteString("hypothesis NOT rejected: overlapping domains help\n")
	} else {
		b.WriteString("hypothesis rejected: overlapping domains do not significantly improve performance\n")
	}
	b.WriteString("\nFinding 6 — Spearman correlation between F1 and label imbalance:\n")
	for _, label := range orderedLabels(f6.PerMatcher) {
		fmt.Fprintf(&b, "  %-26s rho=%+.3f\n", label, f6.PerMatcher[label])
	}
	fmt.Fprintf(&b, "  avg |rho| fine-tuned SLMs: %.3f, prompted LLMs: %.3f, max |rho|: %.3f\n",
		f6.SLMAvg, f6.LLMAvg, f6.MaxAbs)
	if f6.MaxAbs < 0.5 {
		b.WriteString("  -> weak monotonic relationship: LM matchers are insensitive to skew\n")
	} else {
		b.WriteString("  -> correlation exceeds the weak range reported in the paper\n")
	}
	return b.String()
}

// orderedLabels returns map keys in Table 3 row order where possible.
func orderedLabels(m map[string]float64) []string {
	var out []string
	for _, spec := range Table3Specs() {
		if _, ok := m[spec.Label]; ok {
			out = append(out, spec.Label)
		}
	}
	// Append any labels not in the canonical order (e.g. Table 4 rows).
	seen := make(map[string]bool, len(out))
	for _, l := range out {
		seen[l] = true
	}
	var extra []string
	for l := range m {
		if !seen[l] {
			extra = append(extra, l)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}
