package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/datasets"
	"repro/internal/eval"
	"repro/internal/report"
)

// Table1 renders the dataset statistics table.
func Table1() string {
	rows := make([][]string, 0, 11)
	for _, s := range datasets.Table1() {
		rows = append(rows, []string{
			s.Name, s.FullName, s.Domain,
			fmt.Sprintf("%d", s.Attrs), fmt.Sprintf("%d", s.Pos), fmt.Sprintf("%d", s.Neg),
		})
	}
	return report.SimpleTable(
		"Table 1: The 11 benchmark datasets, organized by domain with key statistics.",
		[]string{"", "Dataset", "Domain", "#Attr.", "#Pos.", "#Neg."}, rows)
}

// QualityTable assembles a rendered quality table (Table 3 or 4 layout)
// from evaluation results.
func QualityTable(title string, q *QualityResults) *report.QualityTable {
	t := &report.QualityTable{Title: title, Columns: append(DatasetNames(), "Mean")}
	for i, spec := range q.Specs {
		params := "-"
		if spec.ParamsMillions > 0 {
			params = fmt.Sprintf("%.0f", spec.ParamsMillions)
		}
		row := report.QualityRow{Label: spec.Label, Params: params}
		for _, r := range q.Results[i] {
			row.Cells = append(row.Cells, report.Cell{
				Mean:      r.Mean(),
				Std:       r.Std(),
				Bracketed: spec.Bracketed(r.Target),
			})
		}
		mean, std := q.MacroMean(i)
		row.Cells = append(row.Cells, report.Cell{Mean: mean, Std: std})
		t.Rows = append(t.Rows, row)
	}
	t.MarkBest()
	return t
}

// Table5 renders the throughput table.
func Table5() string {
	rows := make([][]string, 0, len(cost.Catalog))
	for _, r := range cost.Table5() {
		rows = append(rows, []string{
			r.Model.Name,
			cost.UsedBy(r.Model.Name),
			fmt.Sprintf("%.0f", r.Model.ParamsMillions),
			fmt.Sprintf("%.2f", r.Model.RAMGB),
			fmt.Sprintf("%d", r.BatchSize),
			fmt.Sprintf("%.0f", r.TokensPerSec),
		})
	}
	return report.SimpleTable(
		"Table 5: Simulated throughput in tokens/s with 4xA100 (40GB) GPUs for open-weight models.",
		[]string{"Model", "Used by", "#params(M)", "RAM(GB)", "batch size", "Throughput(tokens/s)"}, rows)
}

// Table6 renders the cost table.
func Table6() (string, error) {
	results, err := cost.Table6()
	if err != nil {
		return "", err
	}
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		rows = append(rows, []string{r.Method, fmt.Sprintf("$%.7f", r.CostPer1K), r.Deployment})
	}
	return report.SimpleTable(
		"Table 6: Cost per 1K tokens for EM with proprietary models vs open-weight deployments.",
		[]string{"Method & model", "Cost for 1K tokens", "Deployment scenario"}, rows), nil
}

// Figure3 renders the deployment-cost versus prediction-quality scatter.
// Jellyfish is excluded, as in the paper (its mean quality cannot be
// computed fairly under the cross-dataset setting).
func Figure3(q *QualityResults) (string, error) {
	var points []report.ScatterPoint
	for i, spec := range q.Specs {
		if spec.Label == "Jellyfish" || spec.Label == "StringSim" || spec.Label == "ZeroER" {
			continue
		}
		model := modelNameForSpec(spec.Label)
		if model == "" {
			continue
		}
		c, err := cost.CostFor(model, cost.FourA100)
		if err != nil {
			return "", err
		}
		mean, _ := q.MacroMean(i)
		points = append(points, report.ScatterPoint{X: c.CostPer1K, Y: mean, Label: spec.Label})
	}
	report.SortPointsByX(points)
	return report.Scatter("Figure 3: Deployment cost versus prediction quality.",
		"cost per 1K tokens ($)", "mean F1", points, true), nil
}

// Figure4 renders the model-size versus prediction-quality scatter.
func Figure4(q *QualityResults) string {
	var points []report.ScatterPoint
	for i, spec := range q.Specs {
		if spec.ParamsMillions <= 0 || spec.Label == "Jellyfish" {
			continue
		}
		mean, _ := q.MacroMean(i)
		points = append(points, report.ScatterPoint{X: spec.ParamsMillions, Y: mean, Label: spec.Label})
	}
	report.SortPointsByX(points)
	return report.Scatter("Figure 4: Model size versus prediction quality.",
		"model size (millions of parameters)", "mean F1", points, true)
}

// modelNameForSpec extracts the cost-model name for a Table 3 row label.
func modelNameForSpec(label string) string {
	switch label {
	case "Ditto":
		return "BERT"
	case "Unicorn":
		return "DeBERTa"
	case "AnyMatch [GPT-2]":
		return "GPT-2"
	case "AnyMatch [T5]":
		return "T5"
	case "AnyMatch [LLaMA3.2]":
		return "LLaMA3.2"
	case "MatchGPT [Mixtral-8x7B]":
		return "Mixtral-8x7B"
	case "MatchGPT [SOLAR]":
		return "SOLAR"
	case "MatchGPT [Beluga2]":
		return "Beluga2"
	case "MatchGPT [GPT-4o-Mini]":
		return "GPT-4o-Mini"
	case "MatchGPT [GPT-3.5-Turbo]":
		return "GPT-3.5-Turbo"
	case "MatchGPT [GPT-4]":
		return "GPT-4"
	default:
		return ""
	}
}

// NewHarness constructs the study harness with the paper's protocol, or a
// reduced-seed variant for quick runs. Evaluation parallelism defaults to
// one worker per CPU (safe because parallel and sequential runs produce
// identical results); use NewHarnessParallel to pin a worker count.
func NewHarness(seeds []uint64) *eval.Harness {
	return NewHarnessParallel(seeds, 0)
}

// NewHarnessParallel is NewHarness with an evaluation worker count (see
// eval.Config.Parallelism: 0 means one worker per CPU, 1 sequential).
func NewHarnessParallel(seeds []uint64, parallelism int) *eval.Harness {
	cfg := eval.DefaultConfig()
	if len(seeds) > 0 {
		cfg.Seeds = seeds
	}
	cfg.Parallelism = parallelism
	return eval.NewHarness(cfg)
}
