package core

import (
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/lm"
)

func TestAnalyzeErrors(t *testing.T) {
	h := eval.NewHarness(eval.Config{Seeds: []uint64{1}, MaxTest: 250})
	report, err := AnalyzeErrors(h, lm.GPT4, "ITAM", 3)
	if err != nil {
		t.Fatal(err)
	}
	if report.Target != "ITAM" || !strings.Contains(report.Matcher, "GPT-4") {
		t.Fatalf("metadata: %+v", report)
	}
	total := report.Confusion.TP + report.Confusion.FP + report.Confusion.TN + report.Confusion.FN
	if total != len(h.TestIndices("ITAM")) {
		t.Fatalf("confusion covers %d pairs, want %d", total, len(h.TestIndices("ITAM")))
	}
	if len(report.FalsePositives) > 3 || len(report.FalseNegatives) > 3 {
		t.Fatal("limit not applied")
	}
	// FPs must be sorted by descending confidence.
	for i := 1; i < len(report.FalsePositives); i++ {
		if report.FalsePositives[i].Score > report.FalsePositives[i-1].Score {
			t.Fatal("false positives not sorted by confidence")
		}
	}
	out := report.Render()
	for _, want := range []string{"Error analysis", "False positives", "False negatives", "precision"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestAnalyzeErrorsUnknownTarget(t *testing.T) {
	h := eval.NewHarness(eval.Config{Seeds: []uint64{1}, MaxTest: 100})
	if _, err := AnalyzeErrors(h, lm.GPT4, "NOPE", 3); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestCascadeStudySmall(t *testing.T) {
	h := eval.NewHarness(eval.Config{Seeds: []uint64{1}, MaxTest: 200})
	results, err := RunCascadeStudy(h, []string{"ZOYE"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("%d results", len(results))
	}
	r := results[0]
	if r.EscalationRate <= 0 || r.EscalationRate > 1 {
		t.Fatalf("escalation rate %v", r.EscalationRate)
	}
	if r.CascadeCostPer1K >= r.PlainCostPer1K {
		t.Fatalf("cascade did not reduce cost: %v vs %v", r.CascadeCostPer1K, r.PlainCostPer1K)
	}
	out := RenderCascade(results)
	if !strings.Contains(out, "ZOYE") || !strings.Contains(out, "escalat") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestTable4RAGSpecs(t *testing.T) {
	specs := Table4RAGSpecs()
	if len(specs) != 6 {
		t.Fatalf("%d specs, want 6 (3 models × 2 strategies)", len(specs))
	}
	ragRows := 0
	for _, s := range specs {
		if strings.Contains(s.Label, "rag") {
			ragRows++
			m := s.Factory()
			if !strings.Contains(m.Name(), "RAG") {
				t.Fatalf("rag spec built non-RAG matcher %q", m.Name())
			}
		}
	}
	if ragRows != 3 {
		t.Fatalf("%d RAG rows, want 3", ragRows)
	}
}
