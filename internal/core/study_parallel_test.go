package core

import (
	"reflect"
	"testing"

	"repro/internal/eval"
	"repro/internal/matchers"
)

// TestRunQualityParallelMatchesSequential asserts the user-facing
// determinism contract: RunQuality yields identical QualityResults — and
// an identical progress-label sequence — whether the harness runs
// sequentially or fans cells across workers.
func TestRunQualityParallelMatchesSequential(t *testing.T) {
	specs := []MatcherSpec{
		{Label: "StringSim", Factory: func() matchers.Matcher { return matchers.NewStringSim() }, Bracketed: never},
		{Label: "ZeroER", Factory: func() matchers.Matcher { return matchers.NewZeroER() }, Bracketed: never},
	}
	cfg := eval.Config{Seeds: []uint64{1, 2}, MaxTest: 120}

	cfg.Parallelism = 1
	var seqLabels []string
	seq, err := RunQuality(eval.NewHarness(cfg), specs, func(l string) { seqLabels = append(seqLabels, l) })
	if err != nil {
		t.Fatal(err)
	}

	cfg.Parallelism = 4
	var parLabels []string
	par, err := RunQuality(eval.NewHarness(cfg), specs, func(l string) { parLabels = append(parLabels, l) })
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(seq.Results, par.Results) {
		t.Fatal("parallel RunQuality results differ from sequential")
	}
	if !reflect.DeepEqual(seqLabels, parLabels) {
		t.Fatalf("progress labels differ: sequential %v, parallel %v", seqLabels, parLabels)
	}
	if !reflect.DeepEqual(seqLabels, []string{"StringSim", "ZeroER"}) {
		t.Fatalf("progress labels out of spec order: %v", seqLabels)
	}
}
