package core

import (
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/eval"
	"repro/internal/lm"
	"repro/internal/matchers"
	"repro/internal/stats"
)

// CascadeResult summarises the hybrid-cascade extension experiment on one
// target dataset: plain expensive-matcher quality versus cascade quality,
// with the escalation rate that determines the cost saving.
type CascadeResult struct {
	Target         string
	PlainF1        float64
	CascadeF1      float64
	EscalationRate float64
	// PlainCostPer1K and CascadeCostPer1K price the expensive stage: the
	// cascade only pays it for escalated pairs.
	PlainCostPer1K   float64
	CascadeCostPer1K float64
}

// RunCascadeStudy evaluates the Finding-1 hybrid (StringSim-style cheap
// stage in front of MatchGPT [GPT-4]) across the given targets. It uses a
// single seed: the study is about the quality/cost trade-off, not seed
// variance.
func RunCascadeStudy(h *eval.Harness, targets []string) ([]CascadeResult, error) {
	gpt4Cost, err := cost.CostFor("GPT-4", cost.FourA100)
	if err != nil {
		return nil, err
	}
	var out []CascadeResult
	for _, target := range targets {
		plain, err := h.EvaluateTarget(func() matchers.Matcher { return matchers.NewMatchGPT(lm.GPT4) }, target)
		if err != nil {
			return nil, err
		}

		// Run the cascade once directly so the escalation rate is
		// observable (the harness interface hides matcher state).
		d := h.Dataset(target)
		testIdx := h.TestIndices(target)
		task := matchers.Task{Schema: d.Schema, TargetName: target}
		labels := make([]bool, len(testIdx))
		for i, j := range testIdx {
			task.Pairs = append(task.Pairs, d.Pairs[j].Pair)
			labels[i] = d.Pairs[j].Match
		}
		cascade := matchers.NewCascade(matchers.NewMatchGPT(lm.GPT4))
		cascade.Train(h.Transfer(target), stats.NewRNG(1))
		preds := cascade.Predict(task)
		conf := eval.Score(preds, labels)

		out = append(out, CascadeResult{
			Target:           target,
			PlainF1:          plain.Mean(),
			CascadeF1:        conf.F1(),
			EscalationRate:   cascade.EscalationRate(),
			PlainCostPer1K:   gpt4Cost.CostPer1K,
			CascadeCostPer1K: gpt4Cost.CostPer1K * cascade.EscalationRate(),
		})
	}
	return out, nil
}

// RenderCascade formats the cascade study.
func RenderCascade(results []CascadeResult) string {
	var b strings.Builder
	b.WriteString("Extension: hybrid cascade (cheap similarity stage -> MatchGPT [GPT-4])\n\n")
	fmt.Fprintf(&b, "%-6s  %9s  %10s  %10s  %14s  %9s\n",
		"Target", "plain F1", "cascade F1", "escalated", "GPT-4 cost/1K", "saving")
	var sumRate float64
	for _, r := range results {
		fmt.Fprintf(&b, "%-6s  %9.1f  %10.1f  %9.1f%%  $%.6f->%.6f  %8.1fx\n",
			r.Target, r.PlainF1, r.CascadeF1, 100*r.EscalationRate,
			r.PlainCostPer1K, r.CascadeCostPer1K, safeInv(r.EscalationRate))
		sumRate += r.EscalationRate
	}
	if len(results) > 0 {
		fmt.Fprintf(&b, "\nMean escalation %.1f%%: the cascade pays the GPT-4 bill on a fraction of pairs\nwhile keeping its quality — the hybrid direction Finding 1 points to.\n",
			100*sumRate/float64(len(results)))
	}
	return b.String()
}

func safeInv(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 / x
}
