package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/eval"
	"repro/internal/lm"
	"repro/internal/record"
	"repro/internal/stats"
)

// ErrorCase is one misclassified pair with the zero-shot evidence
// breakdown that explains the failure.
type ErrorCase struct {
	Pair     record.Pair
	Actual   bool
	Score    float64
	Evidence lm.Evidence
}

// ErrorReport holds the error analysis of a prompted matcher on one
// dataset: the confusion totals plus the highest-confidence mistakes in
// both directions.
type ErrorReport struct {
	Matcher        string
	Target         string
	Confusion      eval.Confusion
	FalsePositives []ErrorCase // negatives the model scored highest
	FalseNegatives []ErrorCase // positives the model scored lowest
}

// AnalyzeErrors runs a prompted model on a target dataset's test partition
// and explains its worst mistakes via the evidence breakdown. Limit bounds
// the cases kept per direction.
func AnalyzeErrors(h *eval.Harness, profile lm.Profile, target string, limit int) (*ErrorReport, error) {
	d := h.Dataset(target)
	if d == nil {
		return nil, fmt.Errorf("core: unknown target dataset %q", target)
	}
	if limit <= 0 {
		limit = 5
	}
	model := lm.NewPromptModel(profile, stats.NewRNG(1))
	testIdx := h.TestIndices(target)
	pairs := make([]record.Pair, len(testIdx))
	labels := make([]bool, len(testIdx))
	for i, j := range testIdx {
		pairs[i] = d.Pairs[j].Pair
		labels[i] = d.Pairs[j].Match
		model.ObserveCorpus(record.SerializeRecord(pairs[i].Left, record.SerializeOptions{}))
		model.ObserveCorpus(record.SerializeRecord(pairs[i].Right, record.SerializeOptions{}))
	}
	preds := model.MatchBatch(pairs, record.SerializeOptions{})
	scores := model.RawScores(pairs)

	report := &ErrorReport{Matcher: "MatchGPT [" + profile.Name + "]", Target: target}
	for i := range preds {
		report.Confusion.Observe(preds[i], labels[i])
		if preds[i] == labels[i] {
			continue
		}
		c := ErrorCase{Pair: pairs[i], Actual: labels[i], Score: scores[i], Evidence: model.Evidence(pairs[i])}
		if preds[i] && !labels[i] {
			report.FalsePositives = append(report.FalsePositives, c)
		} else {
			report.FalseNegatives = append(report.FalseNegatives, c)
		}
	}
	sort.Slice(report.FalsePositives, func(a, b int) bool {
		return report.FalsePositives[a].Score > report.FalsePositives[b].Score
	})
	sort.Slice(report.FalseNegatives, func(a, b int) bool {
		return report.FalseNegatives[a].Score < report.FalseNegatives[b].Score
	})
	if len(report.FalsePositives) > limit {
		report.FalsePositives = report.FalsePositives[:limit]
	}
	if len(report.FalseNegatives) > limit {
		report.FalseNegatives = report.FalseNegatives[:limit]
	}
	return report, nil
}

// Render formats the error report for the terminal.
func (r *ErrorReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Error analysis: %s on %s\n", r.Matcher, r.Target)
	fmt.Fprintf(&b, "TP %d  FP %d  TN %d  FN %d  (precision %.2f, recall %.2f, F1 %.1f)\n\n",
		r.Confusion.TP, r.Confusion.FP, r.Confusion.TN, r.Confusion.FN,
		r.Confusion.Precision(), r.Confusion.Recall(), r.Confusion.F1())

	render := func(title string, cases []ErrorCase) {
		fmt.Fprintf(&b, "%s (%d shown):\n", title, len(cases))
		for _, c := range cases {
			fmt.Fprintf(&b, "  score %.3f  conflict %.2f  id %.0f  minshort %.2f  year %.0f  version %.0f\n",
				c.Score, c.Evidence.Conflict, c.Evidence.IdentifierMatch,
				c.Evidence.MinShortSim, c.Evidence.YearConflict, c.Evidence.VersionConflict)
			fmt.Fprintf(&b, "    L: %s\n", record.SerializeRecord(c.Pair.Left, record.SerializeOptions{}))
			fmt.Fprintf(&b, "    R: %s\n", record.SerializeRecord(c.Pair.Right, record.SerializeOptions{}))
		}
		b.WriteString("\n")
	}
	render("False positives — non-matches the model accepted", r.FalsePositives)
	render("False negatives — matches the model rejected", r.FalseNegatives)
	return b.String()
}
