package crossem

import (
	"testing"
)

func TestFacadeDatasetNames(t *testing.T) {
	names := DatasetNames()
	if len(names) != 11 {
		t.Fatalf("DatasetNames = %v", names)
	}
}

func TestFacadeGenerateDataset(t *testing.T) {
	d, err := GenerateDataset("FOZA", 42)
	if err != nil {
		t.Fatal(err)
	}
	if d.Positives() != 110 || d.Negatives() != 836 {
		t.Fatalf("FOZA counts: %d/%d", d.Positives(), d.Negatives())
	}
	if _, err := GenerateDataset("NOPE", 1); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestFacadeHarnessEvaluate(t *testing.T) {
	h := NewHarness([]uint64{1})
	res, err := h.EvaluateTarget(StringSim, "ZOYE")
	if err != nil {
		t.Fatal(err)
	}
	if res.Matcher != "StringSim" || res.Target != "ZOYE" {
		t.Fatalf("metadata: %+v", res)
	}
	if len(res.F1s) != 1 {
		t.Fatalf("one seed expected, got %d runs", len(res.F1s))
	}
}

func TestFacadeFactoriesConstruct(t *testing.T) {
	factories := []MatcherFactory{
		StringSim, ZeroER, Ditto, Unicorn,
		AnyMatchGPT2, AnyMatchT5, AnyMatchLLaMA, Jellyfish,
		MatchGPT(ModelGPT4), MatchGPT(ModelMixtral),
	}
	seen := make(map[string]bool)
	for _, f := range factories {
		m := f()
		if m == nil || m.Name() == "" {
			t.Fatal("factory produced an unusable matcher")
		}
		if seen[m.Name()] {
			t.Fatalf("duplicate matcher name %q", m.Name())
		}
		seen[m.Name()] = true
	}
}

func TestPairMatcherEndToEnd(t *testing.T) {
	m := PromptMatcher(ModelGPT4, 1)
	a := Record{ID: "a", Values: []string{"blue ridge brewing hoppy trail ipa", "6.2%"}}
	b := Record{ID: "b", Values: []string{"blue ridge brwy hoppy trail india pale ale", "6.2 %"}}
	c := Record{ID: "c", Values: []string{"stone creek stout dark roast", "8.0%"}}
	for _, r := range []Record{a, b, c} {
		m.Observe(SerializeRecord(r))
	}
	pAB := m.MatchProb(a, b)
	pAC := m.MatchProb(a, c)
	if pAB <= pAC {
		t.Fatalf("matching pair p=%.3f not above non-matching p=%.3f", pAB, pAC)
	}
}

func TestBlockerThroughFacade(t *testing.T) {
	d, err := GenerateDataset("ZOYE", 42)
	if err != nil {
		t.Fatal(err)
	}
	var left, right []Record
	for i, p := range d.Pairs {
		if i >= 80 {
			break
		}
		left = append(left, p.Left)
		right = append(right, p.Right)
	}
	b := NewBlocker(BlockerConfig{})
	cands := b.CandidatePairs(left, right)
	if len(cands) == 0 {
		t.Fatal("facade blocker produced no candidates")
	}
}

func TestSerializeRecordHidesSchema(t *testing.T) {
	r := Record{Values: []string{"v1", "v2"}}
	if got := SerializeRecord(r); got != "v1, v2" {
		t.Fatalf("SerializeRecord = %q", got)
	}
}
